//! The profiling sink: online aggregation of the event stream.

use crate::pipeline::{PipelineConfig, SealPipeline};
use crate::profile::Profile;
use crate::record::StepRecord;
use crate::store::RecordStore;
use crate::window::WindowRecord;
use std::collections::HashMap;
use std::sync::Arc;
use tpupoint_obs::{Counter, Histogram};
use tpupoint_simcore::trace::{OpCatalog, TraceEvent, TraceSink};
use tpupoint_simcore::{SimDuration, SimRng, SimTime, Track};

/// Observability handles, resolved once per sink so the per-event and
/// per-window hot paths pay a single atomic add per update.
struct SinkMetrics {
    events_recorded: Counter,
    events_lost: Counter,
    windows_sealed: Counter,
    windows_dropped: Counter,
    store_errors: Counter,
    window_events: Arc<Histogram>,
    window_span_us: Arc<Histogram>,
}

impl SinkMetrics {
    fn new() -> Self {
        Self::in_registry(tpupoint_obs::metrics())
    }

    fn in_registry(metrics: &tpupoint_obs::Metrics) -> Self {
        SinkMetrics {
            events_recorded: metrics.counter("profiler.events_recorded"),
            events_lost: metrics.counter("profiler.events_lost"),
            windows_sealed: metrics.counter("profiler.windows_sealed"),
            windows_dropped: metrics.counter("profiler.windows_dropped"),
            store_errors: metrics.counter("profiler.store_errors"),
            window_events: metrics.histogram("profiler.window_events"),
            window_span_us: metrics.histogram("profiler.window_span_us"),
        }
    }
}

/// Caps and cadence of profile windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerOptions {
    /// Maximum wall span of one window. The Cloud TPU profiler caps a
    /// profile at 60,000 ms.
    pub window_max_span: SimDuration,
    /// Maximum events in one window. The Cloud TPU profiler caps a profile
    /// at 1,000,000 events.
    pub window_max_events: u64,
    /// Fault injection: probability that a whole profile response (one
    /// window and all events within it) is lost in transit. The real
    /// profiler tolerates lost gRPC responses by simply requesting the
    /// next profile; losses surface as [`Profile::dropped_windows`].
    pub drop_probability: f64,
    /// Seed of the fault-injection stream.
    pub fault_seed: u64,
    /// User-specified breakpoint (Section III-A): once the runtime marks
    /// this step, the profiler sends its "last request" — the current
    /// window seals and no further events are recorded.
    pub breakpoint_step: Option<u64>,
}

impl Default for ProfilerOptions {
    fn default() -> Self {
        ProfilerOptions {
            window_max_span: SimDuration::from_millis(60_000),
            window_max_events: 1_000_000,
            drop_probability: 0.0,
            fault_seed: 0xFA017,
            breakpoint_step: None,
        }
    }
}

/// How sealed records reach the attached store: directly on the
/// simulation thread, or through the bounded [`SealPipeline`] drained by
/// `tpupoint-par` workers. Both lanes issue the identical operation
/// sequence, so the sealed output is byte-for-byte the same.
enum StoreLane {
    Serial(Box<dyn RecordStore + Send>),
    Pipelined(SealPipeline),
}

/// A step record is streamed to the store once the runtime has marked this
/// many *further* steps complete. Pipelined actors trail at most a couple
/// of steps behind the session's completion marks (outfeed drains, summary
/// writes); the slack keeps a streamed record from missing a late event.
/// [`ProfilerSink::finish`] asserts nothing slipped through in debug
/// builds, and the `streamed_store_matches_in_memory_profile` test checks
/// the stored bytes against the in-memory profile on a real job.
const STEP_STREAM_SLACK: u64 = 8;

/// Callback handed batches of newly completed [`StepRecord`]s while the
/// run is still in flight (the streaming-analyzer feed). Batches arrive
/// in ascending step order, on the simulation thread, and each step is
/// delivered at most once; the observer only *reads* records, so the
/// sealed store output is byte-identical with or without one attached.
pub type SealObserver = Box<dyn FnMut(&[StepRecord]) + Send>;

/// A [`TraceSink`] that builds statistical profile records online.
///
/// Attach to a [`tpupoint_runtime::TrainingJob`] run; call
/// [`ProfilerSink::finish`] afterwards to obtain the [`Profile`].
pub struct ProfilerSink {
    catalog: OpCatalog,
    options: ProfilerOptions,
    model: String,
    dataset: String,
    steps: HashMap<u64, StepRecord>,
    windows: Vec<WindowRecord>,
    current: Option<WindowRecord>,
    step_marks: Vec<(u64, SimTime)>,
    checkpoints: Vec<(u64, SimTime)>,
    store: Option<StoreLane>,
    events_seen: u64,
    op_on_host: Vec<bool>,
    fault_rng: SimRng,
    current_dropped: bool,
    dropped_windows: u64,
    lost_events: u64,
    store_errors: u64,
    first_store_error: Option<String>,
    stopped: bool,
    obs: SinkMetrics,
    observer: Option<SealObserver>,
    /// Steps at or above this bound have not been delivered to the
    /// observer yet (exclusive watermark).
    delivered_through: u64,
    /// Steps at or above this bound have not been written to the store
    /// yet (exclusive watermark). Starts at 1: the synthetic step-0
    /// record pools unstepped events for the whole run and is only
    /// final at [`ProfilerSink::finish`].
    stored_through: u64,
    /// Highest step the runtime has marked complete so far.
    newest_step_mark: u64,
    /// Deliver completed steps to the observer every this many step
    /// marks, in addition to every sealed window (0 = seals only). The
    /// default window caps rarely trigger on short simulated jobs, so
    /// seal events alone would starve a live consumer.
    observer_cadence: u64,
}

impl std::fmt::Debug for ProfilerSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfilerSink")
            .field("events_seen", &self.events_seen)
            .field("steps", &self.steps.len())
            .field("windows_sealed", &self.windows.len())
            .finish()
    }
}

// The laned simulation engine ships buffered sink calls to a flusher job on
// the `tpupoint-par` pool, which requires the profiler sink — and therefore
// every record-store decorator it can hold — to stay `Send`. Keep this
// assertion next to the struct so a non-Send field fails here, not in a
// downstream crate.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ProfilerSink>();
};

impl ProfilerSink {
    /// Creates a sink that buffers everything in memory.
    pub fn new(catalog: OpCatalog, options: ProfilerOptions) -> Self {
        ProfilerSink {
            catalog,
            options,
            model: String::new(),
            dataset: String::new(),
            steps: HashMap::new(),
            windows: Vec::new(),
            current: None,
            step_marks: Vec::new(),
            checkpoints: Vec::new(),
            store: None,
            events_seen: 0,
            op_on_host: Vec::new(),
            fault_rng: SimRng::seed_from(options.fault_seed),
            current_dropped: false,
            dropped_windows: 0,
            lost_events: 0,
            store_errors: 0,
            first_store_error: None,
            stopped: false,
            obs: SinkMetrics::new(),
            observer: None,
            delivered_through: 0,
            stored_through: 1,
            newest_step_mark: 0,
            observer_cadence: 0,
        }
    }

    /// Redirects the sink's self-observability series — and those of the
    /// attached store chain and seal pipeline — into `metrics` instead of
    /// the process-wide registry. The fleet layer calls this right after
    /// construction so every degradation attributes to the job that
    /// suffered it; call it before the first recorded event (rebinding
    /// later leaves prior updates in the old registry, and a pipeline
    /// with a drain already scheduled keeps its handles).
    pub fn use_registry(&mut self, metrics: &tpupoint_obs::Metrics) {
        self.obs = SinkMetrics::in_registry(metrics);
        match &mut self.store {
            Some(StoreLane::Serial(store)) => store.use_registry(metrics),
            Some(StoreLane::Pipelined(pipeline)) => pipeline.use_registry(metrics),
            None => {}
        }
    }

    /// Attaches a streaming observer fed with completed step records at
    /// every sealed window and, when `cadence > 0`, every `cadence`
    /// step marks. See [`SealObserver`] for the delivery contract.
    pub fn set_seal_observer(&mut self, observer: SealObserver, cadence: u64) {
        self.observer = Some(observer);
        self.observer_cadence = cadence;
    }

    /// Delivers every not-yet-delivered step record below `hi_exclusive`
    /// to the observer, in ascending step order.
    fn deliver_completed(&mut self, hi_exclusive: u64) {
        let Some(observer) = self.observer.as_mut() else {
            return;
        };
        if hi_exclusive <= self.delivered_through {
            return;
        }
        let mut batch: Vec<StepRecord> = self
            .steps
            .values()
            .filter(|r| r.step >= self.delivered_through && r.step < hi_exclusive)
            .cloned()
            .collect();
        batch.sort_by_key(|r| r.step);
        self.delivered_through = hi_exclusive;
        if !batch.is_empty() {
            observer(&batch);
        }
    }

    /// Creates a sink that additionally streams sealed records to `store`
    /// (the analyzer-mode recording thread), writing on the simulation
    /// thread.
    pub fn with_store(
        catalog: OpCatalog,
        options: ProfilerOptions,
        store: Box<dyn RecordStore + Send>,
    ) -> Self {
        let mut sink = Self::new(catalog, options);
        sink.store = Some(StoreLane::Serial(store));
        sink
    }

    /// Creates a sink whose store operations are queued on a bounded
    /// [`SealPipeline`] and drained by `tpupoint-par` workers, keeping
    /// record encoding and storage writes off the simulation thread. The
    /// sealed output is byte-identical to [`ProfilerSink::with_store`].
    pub fn with_pipelined_store(
        catalog: OpCatalog,
        options: ProfilerOptions,
        store: Box<dyn RecordStore + Send>,
        config: PipelineConfig,
    ) -> Self {
        let mut sink = Self::new(catalog, options);
        sink.store = Some(StoreLane::Pipelined(SealPipeline::new(store, config)));
        sink
    }

    /// The catalog as parallel name/uses-MXU columns, for persistence.
    fn catalog_columns(&self) -> (Vec<String>, Vec<bool>) {
        let names: Vec<String> = self.catalog.iter().map(|(_, n)| n.to_owned()).collect();
        let uses_mxu: Vec<bool> = self
            .catalog
            .iter()
            .map(|(id, _)| self.catalog.attrs(id).uses_mxu)
            .collect();
        (names, uses_mxu)
    }

    /// Labels the profile with its model/dataset (purely informational);
    /// forwarded to the store's manifest when one is attached, along with
    /// the op-name catalog so even a crashed run recovers real operator
    /// names.
    pub fn set_source(&mut self, model: &str, dataset: &str) {
        self.model = model.to_owned();
        self.dataset = dataset.to_owned();
        let (names, uses_mxu) = self.catalog_columns();
        // Host placement is learned during the run; until then every op
        // defaults to host, matching the finished profile's default.
        let on_host = vec![true; names.len()];
        match self.store.as_mut() {
            Some(StoreLane::Serial(store)) => {
                store.set_meta(model, dataset);
                store.set_catalog(&names, &uses_mxu, &on_host);
            }
            Some(StoreLane::Pipelined(pipeline)) => {
                pipeline.set_meta(model, dataset);
                pipeline.set_catalog(names, uses_mxu, on_host);
            }
            None => {}
        }
    }

    /// Accounts one store-operation result: failures are counted
    /// (`profiler.store_errors`), the first is remembered, and recording
    /// continues — a storage outage must never kill the training run, but
    /// it must not be silent either.
    fn note_store_result(&mut self, what: &str, result: std::io::Result<()>) {
        if let Err(err) = result {
            self.store_errors += 1;
            self.obs.store_errors.inc();
            if self.first_store_error.is_none() {
                self.first_store_error = Some(format!("{what}: {err}"));
            }
        }
    }

    /// Events consumed so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    fn seal_window(&mut self) {
        if let Some(window) = self.current.take() {
            let _span = tpupoint_obs::span!("profiler.seal_window");
            if self.current_dropped {
                // The profile response was lost: neither recorded nor kept.
                self.dropped_windows += 1;
                self.lost_events += window.events;
                self.obs.windows_dropped.inc();
                self.obs.events_lost.add(window.events);
                return;
            }
            self.obs.windows_sealed.inc();
            self.obs.events_recorded.add(window.events);
            self.obs.window_events.record(window.events);
            self.obs
                .window_span_us
                .record(window.end.saturating_since(window.start).as_micros());
            // Recording failures must not kill the training run, but they
            // are counted and surfaced via the profile. On the pipelined
            // lane the write happens on a pool worker; its result is
            // merged into the same accounting at the finish barrier.
            let serial_result = match self.store.as_mut() {
                Some(StoreLane::Serial(store)) => Some(store.put_window(&window)),
                Some(StoreLane::Pipelined(pipeline)) => {
                    pipeline.put_window(&window);
                    None
                }
                None => None,
            };
            if let Some(result) = serial_result {
                self.note_store_result("put_window", result);
            }
            // Steps below the window's last step are complete; the last
            // step itself may straddle into the next window, so it stays
            // undelivered until a later seal or cadence tick.
            let completed_below = window.last_step;
            self.windows.push(window);
            self.deliver_completed(completed_below);
            self.stream_completed_steps();
        }
    }

    /// Streams step records the run can no longer touch to the attached
    /// store, in ascending step order, while the run is still in flight.
    /// Rides every kept window seal, so the finish-time store drain
    /// shrinks from "every step of the run" to the last
    /// [`STEP_STREAM_SLACK`] steps plus the synthetic step-0 record. On
    /// the laned engine the writes happen inside sink flushes that run
    /// off the simulation thread, so streaming also moves this work off
    /// the critical path.
    fn stream_completed_steps(&mut self) {
        if self.store.is_none() {
            return;
        }
        let hi = self.newest_step_mark.saturating_sub(STEP_STREAM_SLACK);
        if hi <= self.stored_through {
            return;
        }
        let mut batch: Vec<StepRecord> = self
            .steps
            .values()
            .filter(|r| r.step >= self.stored_through && r.step < hi)
            .cloned()
            .collect();
        batch.sort_by_key(|r| r.step);
        self.stored_through = hi;
        for record in &batch {
            let serial_result = match self.store.as_mut() {
                Some(StoreLane::Serial(store)) => Some(store.put_step(record)),
                Some(StoreLane::Pipelined(pipeline)) => {
                    pipeline.put_step(record);
                    None
                }
                None => unreachable!("checked above"),
            };
            if let Some(result) = serial_result {
                self.note_store_result("put_step", result);
            }
        }
    }

    fn window_for(&mut self, event: &TraceEvent) -> &mut WindowRecord {
        let needs_seal = match &self.current {
            Some(w) => {
                // Seal on a straddling event too: admitting an event whose
                // *end* crosses the cap would extend the kept window past
                // the profiler's 60,000 ms limit.
                w.events >= self.options.window_max_events
                    || event.end().saturating_since(w.start) > self.options.window_max_span
            }
            None => false,
        };
        if needs_seal {
            self.seal_window();
        }
        if self.current.is_none() {
            // A new profile request goes out; its response may be lost.
            self.current_dropped = self.fault_rng.chance(self.options.drop_probability);
            self.current = Some(WindowRecord {
                index: self.windows.len() as u64,
                start: event.start,
                end: event.start,
                events: 0,
                tpu_busy: SimDuration::ZERO,
                mxu_busy: SimDuration::ZERO,
                first_step: u64::MAX,
                last_step: 0,
            });
        }
        self.current.as_mut().expect("just ensured")
    }

    /// Seals the final window and returns the finished profile, sorted by
    /// step number. Also seals the store, if any; on the pipelined lane
    /// this is the drain barrier — it returns only after every queued
    /// operation reached the store, so the profile's error accounting is
    /// identical to the serial lane's.
    pub fn finish(mut self) -> Profile {
        self.seal_window();
        let mut steps: Vec<StepRecord> = std::mem::take(&mut self.steps).into_values().collect();
        steps.sort_by_key(|r| r.step);
        // Flush the undelivered tail to the observer so it has seen
        // every step exactly once by the time the profile exists.
        if let Some(observer) = self.observer.as_mut() {
            let from = steps.partition_point(|r| r.step < self.delivered_through);
            if from < steps.len() {
                observer(&steps[from..]);
            }
            self.delivered_through = u64::MAX;
        }
        let (op_names, op_uses_mxu) = self.catalog_columns();
        let mut op_on_host = std::mem::take(&mut self.op_on_host);
        op_on_host.resize(op_names.len(), true);
        match self.store.take() {
            Some(StoreLane::Serial(mut store)) => {
                store.set_catalog(&op_names, &op_uses_mxu, &op_on_host);
                // Steps below `stored_through` were streamed at window
                // seals; only the tail plus the synthetic step-0 record
                // (which pools unstepped events for the whole run and is
                // final only now) remain. With no mid-run seals this
                // degenerates to writing every step, in the same order
                // as before streaming existed.
                let from = steps.partition_point(|r| r.step < self.stored_through);
                let zero = steps.first().filter(|r| r.step == 0);
                for record in zero.into_iter().chain(&steps[from..]) {
                    let result = store.put_step(record);
                    self.note_store_result("put_step", result);
                }
                let result = store.seal();
                self.note_store_result("seal", result);
            }
            Some(StoreLane::Pipelined(pipeline)) => {
                pipeline.set_catalog(op_names.clone(), op_uses_mxu.clone(), op_on_host.clone());
                let from = steps.partition_point(|r| r.step < self.stored_through);
                let zero = steps.first().filter(|r| r.step == 0);
                for record in zero.into_iter().chain(&steps[from..]) {
                    pipeline.put_step(record);
                }
                pipeline.seal();
                pipeline.wait_idle();
                for (what, err) in pipeline.take_errors() {
                    self.note_store_result(what, Err(err));
                }
            }
            None => {}
        }
        Profile {
            model: self.model,
            dataset: self.dataset,
            op_names,
            op_uses_mxu,
            op_on_host,
            steps,
            windows: self.windows,
            step_marks: self.step_marks,
            checkpoints: self.checkpoints,
            dropped_windows: self.dropped_windows,
            lost_events: self.lost_events,
            store_errors: self.store_errors,
            store_error: self.first_store_error,
        }
    }
}

impl TraceSink for ProfilerSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.stopped {
            return;
        }
        self.events_seen += 1;
        // Track which side each op runs on (host/storage vs TPU core).
        let idx = event.op.0 as usize;
        if idx >= self.op_on_host.len() {
            self.op_on_host.resize(idx + 1, true);
        }
        self.op_on_host[idx] = !matches!(event.track, Track::TpuCore(_));
        // Window accounting first: it decides whether this event belongs
        // to a lost profile response.
        let window = self.window_for(event);
        window.events += 1;
        if event.end() > window.end {
            window.end = event.end();
        }
        if let Track::TpuCore(_) = event.track {
            window.tpu_busy += event.dur;
            window.mxu_busy += event.mxu_dur;
        }
        // Unstepped events (session init, background transfers) carry no
        // step; letting them default to 0 would drag `first_step` of every
        // mid-training window down to 0.
        if let Some(step) = event.step {
            window.first_step = window.first_step.min(step);
            window.last_step = window.last_step.max(step);
        }
        if self.current_dropped {
            // Events of a lost response never reach the records.
            return;
        }
        // Per-step statistical aggregation; unstepped events pool in the
        // synthetic step-0 (session init) record.
        let step = event.step.unwrap_or(0);
        debug_assert!(
            step == 0 || step >= self.stored_through,
            "event for step {step} arrived after its record was streamed \
             (stored_through {}); STEP_STREAM_SLACK is too small",
            self.stored_through
        );
        self.steps
            .entry(step)
            .or_insert_with(|| StepRecord::new(step))
            .absorb(event.op, event.track, event.start, event.dur, event.mxu_dur);
    }

    fn on_step(&mut self, step: u64, at: SimTime) {
        if self.stopped {
            return;
        }
        self.step_marks.push((step, at));
        self.newest_step_mark = self.newest_step_mark.max(step);
        // The cadence tick keeps a live observer fed even when the
        // window caps never trigger. One step of slack: step `step` just
        // completed, but pipelined events for it may still be in flight,
        // so only steps strictly below it are delivered.
        if self.observer_cadence > 0 && step > 0 && step.is_multiple_of(self.observer_cadence) {
            self.deliver_completed(step);
        }
        if self.options.breakpoint_step == Some(step) {
            // The profiling thread sends its last request and detaches;
            // training continues unobserved.
            self.seal_window();
            self.stopped = true;
        }
    }

    fn on_checkpoint(&mut self, step: u64, at: SimTime) {
        if self.stopped {
            return;
        }
        self.checkpoints.push((step, at));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::InMemoryStore;
    use tpupoint_runtime::{JobConfig, TrainingJob};
    use tpupoint_simcore::trace::OpAttrs;
    use tpupoint_simcore::OpId;

    fn event(op: u32, step: u64, start_us: u64, dur_us: u64) -> TraceEvent {
        TraceEvent {
            op: OpId(op),
            track: Track::TpuCore(0),
            start: SimTime::from_micros(start_us),
            dur: SimDuration::from_micros(dur_us),
            mxu_dur: SimDuration::ZERO,
            step: Some(step),
        }
    }

    fn small_catalog() -> OpCatalog {
        let mut c = OpCatalog::new();
        c.intern("fusion", OpAttrs { uses_mxu: true });
        c.intern("Reshape", OpAttrs::default());
        c
    }

    #[test]
    fn events_aggregate_into_step_records() {
        let mut sink = ProfilerSink::new(small_catalog(), ProfilerOptions::default());
        sink.record(&event(0, 1, 0, 10));
        sink.record(&event(0, 1, 10, 10));
        sink.record(&event(1, 2, 20, 5));
        let profile = sink.finish();
        assert_eq!(profile.steps.len(), 2);
        assert_eq!(profile.steps[0].step, 1);
        assert_eq!(profile.steps[0].ops[&OpId(0)].count, 2);
        assert_eq!(profile.steps[1].step, 2);
    }

    #[test]
    fn windows_seal_at_event_cap() {
        let options = ProfilerOptions {
            window_max_events: 3,
            ..ProfilerOptions::default()
        };
        let mut sink = ProfilerSink::new(small_catalog(), options);
        for i in 0..7 {
            sink.record(&event(0, 1, i * 10, 5));
        }
        let profile = sink.finish();
        assert_eq!(profile.windows.len(), 3);
        assert_eq!(profile.windows[0].events, 3);
        assert_eq!(profile.windows[1].events, 3);
        assert_eq!(profile.windows[2].events, 1);
    }

    #[test]
    fn windows_seal_at_span_cap() {
        let options = ProfilerOptions {
            window_max_span: SimDuration::from_micros(100),
            ..ProfilerOptions::default()
        };
        let mut sink = ProfilerSink::new(small_catalog(), options);
        sink.record(&event(0, 1, 0, 5));
        sink.record(&event(0, 1, 50, 5));
        sink.record(&event(0, 2, 200, 5)); // beyond 100us from window start
        let profile = sink.finish();
        assert_eq!(profile.windows.len(), 2);
        assert_eq!(profile.windows[0].events, 2);
        assert_eq!(profile.windows[1].first_step, 2);
    }

    #[test]
    fn window_indices_are_sequential() {
        let options = ProfilerOptions {
            window_max_events: 2,
            ..ProfilerOptions::default()
        };
        let mut sink = ProfilerSink::new(small_catalog(), options);
        for i in 0..6 {
            sink.record(&event(0, 1, i, 1));
        }
        let profile = sink.finish();
        let indices: Vec<u64> = profile.windows.iter().map(|w| w.index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn full_job_profile_has_all_steps_and_marks() {
        let job = TrainingJob::new(JobConfig::demo());
        let mut sink = ProfilerSink::new(job.catalog().clone(), ProfilerOptions::default());
        sink.set_source(&job.config().model, &job.config().dataset.name);
        let report = job.run(&mut sink);
        let profile = sink.finish();
        assert_eq!(profile.step_marks.len() as u64, report.steps_completed);
        // Host/TPU attribution: fusion runs on the TPU, decode on the host.
        let fusion = profile.op_id("fusion").expect("fusion occurred");
        assert!(!profile.op_on_host[fusion.0 as usize]);
        let xfer = profile
            .op_id("TransferBufferToInfeedLocked")
            .expect("transfer occurred");
        assert!(profile.op_on_host[xfer.0 as usize]);
        // init (0) + steps + shutdown record.
        assert_eq!(profile.steps.len() as u64, report.steps_completed + 2);
        assert_eq!(profile.model, "demo-mlp");
        assert_eq!(
            profile.checkpoints.len(),
            job.config().checkpoint_plan().len()
        );
        // The profiler's steady metrics should be close to the runtime's
        // ground truth (same definition, same window).
        let idle = profile.steady_tpu_idle_fraction();
        assert!((idle - report.tpu_idle_fraction()).abs() < 0.05);
    }

    #[test]
    fn seal_observer_sees_every_step_once_in_order() {
        use std::sync::{Arc, Mutex};
        let job = TrainingJob::new(JobConfig::demo());
        let mut sink = ProfilerSink::new(job.catalog().clone(), ProfilerOptions::default());
        let batches: Arc<Mutex<Vec<Vec<u64>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_batches = Arc::clone(&batches);
        sink.set_seal_observer(
            Box::new(move |records| {
                sink_batches
                    .lock()
                    .unwrap()
                    .push(records.iter().map(|r| r.step).collect());
            }),
            4,
        );
        job.run(&mut sink);
        let profile = sink.finish();
        let batches = batches.lock().unwrap();
        assert!(
            batches.len() > 2,
            "cadence delivery fired mid-run, not only at finish: {batches:?}"
        );
        let delivered: Vec<u64> = batches.iter().flatten().copied().collect();
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(delivered, sorted, "ascending, no duplicates");
        let all: Vec<u64> = profile.steps.iter().map(|r| r.step).collect();
        assert_eq!(delivered, all, "every profile step delivered exactly once");
    }

    #[test]
    fn seal_observer_fires_on_window_seals_without_cadence() {
        use std::sync::{Arc, Mutex};
        let job = TrainingJob::new(JobConfig::demo());
        let mut sink = ProfilerSink::new(
            job.catalog().clone(),
            ProfilerOptions {
                window_max_span: SimDuration::from_millis(50),
                ..ProfilerOptions::default()
            },
        );
        let batches: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_batches = Arc::clone(&batches);
        sink.set_seal_observer(
            Box::new(move |records| sink_batches.lock().unwrap().push(records.len())),
            0,
        );
        job.run(&mut sink);
        let profile = sink.finish();
        assert!(profile.windows.len() > 1);
        // Seals alone (cadence 0) still deliver, before the finish flush.
        assert!(
            batches.lock().unwrap().len() > 1,
            "{:?}",
            batches.lock().unwrap()
        );
    }

    #[test]
    fn store_receives_sealed_records() {
        let job = TrainingJob::new(JobConfig::demo());
        let store = Box::new(InMemoryStore::new());
        let mut sink = ProfilerSink::with_store(
            job.catalog().clone(),
            ProfilerOptions {
                window_max_span: SimDuration::from_millis(50),
                ..ProfilerOptions::default()
            },
            store,
        );
        let report = job.run(&mut sink);
        let profile = sink.finish();
        assert!(profile.windows.len() > 1, "short windows should seal often");
        assert_eq!(profile.steps.len() as u64, report.steps_completed + 2);
    }

    #[test]
    fn dropped_responses_lose_their_windows_and_events() {
        let options = ProfilerOptions {
            window_max_events: 10,
            drop_probability: 0.5,
            fault_seed: 3,
            ..ProfilerOptions::default()
        };
        let mut sink = ProfilerSink::new(small_catalog(), options);
        for i in 0..200 {
            sink.record(&event(0, 1 + i / 10, i * 5, 2));
        }
        let profile = sink.finish();
        assert!(profile.dropped_windows > 0, "some responses must drop");
        assert!(profile.lost_events > 0);
        assert!(
            profile.windows.len() as u64 + profile.dropped_windows == 20,
            "{} kept + {} dropped",
            profile.windows.len(),
            profile.dropped_windows
        );
        let recorded: u64 = profile.steps.iter().map(|r| r.total_invocations()).sum();
        assert_eq!(recorded + profile.lost_events, 200);
        assert!(profile.loss_fraction() > 0.0 && profile.loss_fraction() < 1.0);
    }

    #[test]
    fn zero_drop_probability_loses_nothing() {
        let mut sink = ProfilerSink::new(small_catalog(), ProfilerOptions::default());
        for i in 0..50 {
            sink.record(&event(0, 1, i, 1));
        }
        let profile = sink.finish();
        assert_eq!(profile.dropped_windows, 0);
        assert_eq!(profile.lost_events, 0);
        assert_eq!(profile.loss_fraction(), 0.0);
    }

    #[test]
    fn breakpoint_stops_profiling_but_not_training() {
        let job = TrainingJob::new(JobConfig::demo());
        let options = ProfilerOptions {
            breakpoint_step: Some(10),
            ..ProfilerOptions::default()
        };
        let mut sink = ProfilerSink::new(job.catalog().clone(), options);
        let report = job.run(&mut sink);
        let profile = sink.finish();
        // Training ran to completion...
        assert_eq!(
            report.steps_completed as usize,
            job.config().step_plan().len()
        );
        // ...but the profile covers only steps up to the breakpoint.
        let max_marked = profile.step_marks.iter().map(|(s, _)| *s).max().unwrap();
        assert_eq!(max_marked, 10);
        assert!(profile.steps.iter().all(|r| r.step <= 11));
    }

    #[test]
    fn unstepped_events_land_in_step_zero() {
        let mut sink = ProfilerSink::new(small_catalog(), ProfilerOptions::default());
        let mut ev = event(0, 9, 0, 1);
        ev.step = None;
        sink.record(&ev);
        let profile = sink.finish();
        assert_eq!(profile.steps[0].step, 0);
    }

    #[test]
    fn unstepped_events_do_not_drag_window_first_step_to_zero() {
        let mut sink = ProfilerSink::new(small_catalog(), ProfilerOptions::default());
        sink.record(&event(0, 40, 0, 5));
        let mut unstepped = event(1, 0, 10, 5);
        unstepped.step = None;
        sink.record(&unstepped);
        sink.record(&event(0, 41, 20, 5));
        let profile = sink.finish();
        assert_eq!(profile.windows.len(), 1);
        assert_eq!(
            profile.windows[0].first_step, 40,
            "step=None must not count"
        );
        assert_eq!(profile.windows[0].last_step, 41);
        assert_eq!(profile.windows[0].events, 3, "the event itself is kept");
    }

    #[test]
    fn straddling_event_seals_instead_of_stretching_the_window() {
        let options = ProfilerOptions {
            window_max_span: SimDuration::from_micros(100),
            ..ProfilerOptions::default()
        };
        let mut sink = ProfilerSink::new(small_catalog(), options);
        sink.record(&event(0, 1, 0, 10));
        // Starts inside the cap (95 < 100) but ends beyond it (115): the
        // old start-only check admitted it and stretched the window.
        sink.record(&event(0, 1, 95, 20));
        let profile = sink.finish();
        assert_eq!(profile.windows.len(), 2);
        for w in &profile.windows {
            assert!(
                w.span() <= SimDuration::from_micros(100),
                "window {} spans {:?}, beyond the cap",
                w.index,
                w.span()
            );
        }
        assert_eq!(profile.windows[1].start, SimTime::from_micros(95));
    }

    #[test]
    fn store_errors_are_counted_not_swallowed() {
        use crate::resilience::{FaultConfig, FaultStore};
        let store = FaultStore::new(
            InMemoryStore::new(),
            FaultConfig {
                error_probability: 1.0,
                ..FaultConfig::default()
            },
        );
        let mut sink = ProfilerSink::with_store(
            small_catalog(),
            ProfilerOptions {
                window_max_events: 2,
                ..ProfilerOptions::default()
            },
            Box::new(store),
        );
        for i in 0..6 {
            sink.record(&event(0, 1, i * 10, 5));
        }
        let profile = sink.finish();
        // Every put_window, put_step, and the seal failed.
        assert!(profile.store_errors >= 4, "got {}", profile.store_errors);
        let first = profile.store_error.as_deref().expect("first error kept");
        assert!(first.contains("injected fault"), "{first}");
        assert!(profile.is_degraded());
        // The in-memory profile itself is still complete.
        assert_eq!(profile.windows.len(), 3);
    }

    #[test]
    fn streamed_store_matches_in_memory_profile() {
        use crate::store::JsonlStore;
        let dir = std::env::temp_dir().join(format!("tpupoint-sink-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let job = TrainingJob::new(JobConfig::demo());
        let store = JsonlStore::create(&dir).expect("create store");
        let mut sink = ProfilerSink::with_store(
            job.catalog().clone(),
            ProfilerOptions {
                window_max_events: 64,
                ..ProfilerOptions::default()
            },
            Box::new(store),
        );
        sink.set_source(&job.config().model, &job.config().dataset.name);
        job.run(&mut sink);
        assert!(
            sink.stored_through > 1,
            "window seals must stream steps mid-run, not leave them all \
             to finish (stored_through {})",
            sink.stored_through
        );
        let profile = sink.finish();
        let recovered = JsonlStore::recover(&dir).expect("recover");
        assert_eq!(
            recovered.steps, profile.steps,
            "streamed prefix + finish tail must equal the in-memory steps"
        );
        assert_eq!(recovered.windows, profile.windows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_store_keeps_profile_clean_under_transient_faults() {
        use crate::resilience::{FaultConfig, FaultStore, RetryPolicy, RetryStore};
        let fault = FaultStore::new(
            InMemoryStore::new(),
            FaultConfig {
                error_probability: 0.3,
                seed: 5,
                ..FaultConfig::default()
            },
        );
        let retry = RetryStore::with_policy(
            fault,
            RetryPolicy {
                max_retries: 10,
                ..RetryPolicy::default()
            },
        );
        let mut sink = ProfilerSink::with_store(
            small_catalog(),
            ProfilerOptions {
                window_max_events: 5,
                ..ProfilerOptions::default()
            },
            Box::new(retry),
        );
        for i in 0..40 {
            sink.record(&event(0, 1 + i / 10, i * 10, 5));
        }
        let profile = sink.finish();
        assert_eq!(profile.store_errors, 0, "retries absorbed every fault");
        assert!(!profile.is_degraded());
    }
}
