//! Per-step statistical records: the unit TPUPoint-Analyzer clusters.
//!
//! "For each step, we define dimensions in terms of TensorFlow operations,
//! the accumulated number of invocations, and total durations" (Section
//! IV-A). A [`StepRecord`] stores exactly that, keyed by interned op id.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tpupoint_simcore::{OpId, SimDuration, SimTime, Track};

/// Accumulated statistics for one operator within one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpStats {
    /// Number of invocations.
    pub count: u64,
    /// Sum of wall durations.
    pub total: SimDuration,
}

/// Statistical summary of one profile step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Profile step number (0 = session init, `n+1` = shutdown).
    pub step: u64,
    /// Per-operator invocation counts and total durations.
    pub ops: BTreeMap<OpId, OpStats>,
    /// TPU busy time within the step.
    pub tpu_time: SimDuration,
    /// MXU-active time within the step.
    pub mxu_time: SimDuration,
    /// Host busy time within the step.
    pub host_time: SimDuration,
    /// Earliest event start seen for this step.
    pub first_start: SimTime,
    /// Latest event end seen for this step.
    pub last_end: SimTime,
}

impl StepRecord {
    /// Creates an empty record for `step`.
    pub fn new(step: u64) -> Self {
        StepRecord {
            step,
            ops: BTreeMap::new(),
            tpu_time: SimDuration::ZERO,
            mxu_time: SimDuration::ZERO,
            host_time: SimDuration::ZERO,
            first_start: SimTime::from_micros(u64::MAX),
            last_end: SimTime::ZERO,
        }
    }

    /// Folds one event into the record.
    pub fn absorb(
        &mut self,
        op: OpId,
        track: Track,
        start: SimTime,
        dur: SimDuration,
        mxu: SimDuration,
    ) {
        let stats = self.ops.entry(op).or_default();
        stats.count += 1;
        stats.total += dur;
        match track {
            Track::TpuCore(_) => {
                self.tpu_time += dur;
                self.mxu_time += mxu;
            }
            Track::Host => self.host_time += dur,
            Track::Storage => {}
        }
        if start < self.first_start {
            self.first_start = start;
        }
        let end = start + dur;
        if end > self.last_end {
            self.last_end = end;
        }
    }

    /// The set of distinct operators that occurred in this step — the
    /// "set of events" of the paper's Equation 1.
    pub fn event_set(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ops.keys().copied()
    }

    /// Number of distinct operators.
    pub fn distinct_ops(&self) -> usize {
        self.ops.len()
    }

    /// Total invocations across all operators.
    pub fn total_invocations(&self) -> u64 {
        self.ops.values().map(|s| s.count).sum()
    }

    /// Wall span covered by this step's events.
    pub fn span(&self) -> SimDuration {
        if self.last_end >= self.first_start {
            self.last_end - self.first_start
        } else {
            SimDuration::ZERO
        }
    }

    /// Total accumulated duration across all operators (host + TPU +
    /// storage); the "length" of the step for coverage rankings.
    pub fn total_duration(&self) -> SimDuration {
        self.ops.values().map(|s| s.total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(record: &mut StepRecord, op: u32, track: Track, start: u64, dur: u64, mxu: u64) {
        record.absorb(
            OpId(op),
            track,
            SimTime::from_micros(start),
            SimDuration::from_micros(dur),
            SimDuration::from_micros(mxu),
        );
    }

    #[test]
    fn absorb_accumulates_counts_and_durations() {
        let mut r = StepRecord::new(3);
        ev(&mut r, 1, Track::TpuCore(0), 0, 10, 6);
        ev(&mut r, 1, Track::TpuCore(0), 10, 20, 12);
        ev(&mut r, 2, Track::Host, 5, 7, 0);
        assert_eq!(r.ops[&OpId(1)].count, 2);
        assert_eq!(r.ops[&OpId(1)].total.as_micros(), 30);
        assert_eq!(r.tpu_time.as_micros(), 30);
        assert_eq!(r.mxu_time.as_micros(), 18);
        assert_eq!(r.host_time.as_micros(), 7);
        assert_eq!(r.distinct_ops(), 2);
        assert_eq!(r.total_invocations(), 3);
    }

    #[test]
    fn span_covers_first_to_last() {
        let mut r = StepRecord::new(1);
        ev(&mut r, 1, Track::Host, 100, 50, 0);
        ev(&mut r, 2, Track::TpuCore(0), 120, 200, 0);
        assert_eq!(r.first_start.as_micros(), 100);
        assert_eq!(r.last_end.as_micros(), 320);
        assert_eq!(r.span().as_micros(), 220);
    }

    #[test]
    fn storage_events_do_not_count_as_host_or_tpu() {
        let mut r = StepRecord::new(1);
        ev(&mut r, 9, Track::Storage, 0, 100, 0);
        assert_eq!(r.host_time, SimDuration::ZERO);
        assert_eq!(r.tpu_time, SimDuration::ZERO);
        assert_eq!(r.total_duration().as_micros(), 100);
    }

    #[test]
    fn event_set_is_sorted_and_deduplicated() {
        let mut r = StepRecord::new(1);
        ev(&mut r, 5, Track::Host, 0, 1, 0);
        ev(&mut r, 2, Track::Host, 1, 1, 0);
        ev(&mut r, 5, Track::Host, 2, 1, 0);
        let set: Vec<u32> = r.event_set().map(|o| o.0).collect();
        assert_eq!(set, vec![2, 5]);
    }

    #[test]
    fn empty_record_has_zero_span() {
        let r = StepRecord::new(0);
        assert_eq!(r.span(), SimDuration::ZERO);
        assert_eq!(r.total_duration(), SimDuration::ZERO);
    }
}
