//! Recording backends for profile records.
//!
//! The paper's profiler either buffers records in host memory (optimizer
//! mode) or has a recording thread persist them to Cloud Storage (analyzer
//! mode). [`InMemoryStore`] and [`JsonlStore`] are those two backends; the
//! JSONL files stand in for the Storage Bucket.
//!
//! # Crash tolerance
//!
//! [`JsonlStore`] streams records into `steps.jsonl.part` and
//! `windows.jsonl.part` while the run is live, tracking the acknowledged
//! (flushed) counts in a small `manifest.json` that is always replaced
//! atomically (written to `manifest.json.part`, then renamed). A clean
//! shutdown calls [`RecordStore::seal`], which renames the `.part` record
//! files to their final names and marks the manifest sealed. After a crash
//! (`kill -9` mid-write) the directory holds a torn `.part` stream; every
//! loader here recovers the valid record prefix past the torn tail instead
//! of failing the whole load, and [`JsonlStore::recover`] cross-checks the
//! manifest so callers can tell "everything acknowledged survived" from
//! "N acknowledged records are missing".
//!
//! Resilience decorators (bounded retry with deterministic backoff,
//! spill-to-memory, fault injection) live in [`crate::resilience`].

use crate::profile::Profile;
use crate::record::StepRecord;
use crate::window::WindowRecord;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Destination for sealed profile records.
pub trait RecordStore {
    /// Persists one step record.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the backing medium.
    fn put_step(&mut self, record: &StepRecord) -> io::Result<()>;

    /// Persists one window record.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the backing medium.
    fn put_window(&mut self, record: &WindowRecord) -> io::Result<()>;

    /// Flushes buffered writes. After a successful flush every record put
    /// so far counts as *acknowledged*: it must survive a crash of the
    /// writer.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the backing medium.
    fn flush(&mut self) -> io::Result<()>;

    /// Flushes and marks the record stream complete (a clean shutdown).
    /// Defaults to [`RecordStore::flush`] for backends with no notion of
    /// sealing.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the backing medium.
    fn seal(&mut self) -> io::Result<()> {
        self.flush()
    }

    /// Labels the stream with its source model/dataset (informational;
    /// defaults to a no-op).
    fn set_meta(&mut self, _model: &str, _dataset: &str) {}

    /// Persists the op-name catalog alongside the records, so a crashed
    /// run can be recovered with real operator names instead of `op<N>`
    /// placeholders. Defaults to a no-op for backends with no sidecar
    /// metadata.
    fn set_catalog(&mut self, _names: &[String], _uses_mxu: &[bool], _on_host: &[bool]) {}

    /// Redirects this store's self-observability series into `metrics`
    /// instead of the process-wide registry. The fleet layer gives every
    /// job its own registry so degradations attribute to the tenant that
    /// suffered them; decorators rebind their handles and forward to the
    /// wrapped store. Defaults to a no-op for backends with no metrics.
    fn use_registry(&mut self, _metrics: &tpupoint_obs::Metrics) {}
}

macro_rules! impl_record_store_for_box {
    ($ty:ty) => {
        impl RecordStore for $ty {
            fn put_step(&mut self, record: &StepRecord) -> io::Result<()> {
                (**self).put_step(record)
            }

            fn put_window(&mut self, record: &WindowRecord) -> io::Result<()> {
                (**self).put_window(record)
            }

            fn flush(&mut self) -> io::Result<()> {
                (**self).flush()
            }

            fn seal(&mut self) -> io::Result<()> {
                (**self).seal()
            }

            fn set_meta(&mut self, model: &str, dataset: &str) {
                (**self).set_meta(model, dataset);
            }

            fn set_catalog(&mut self, names: &[String], uses_mxu: &[bool], on_host: &[bool]) {
                (**self).set_catalog(names, uses_mxu, on_host);
            }

            fn use_registry(&mut self, metrics: &tpupoint_obs::Metrics) {
                (**self).use_registry(metrics);
            }
        }
    };
}

impl_record_store_for_box!(Box<dyn RecordStore>);
// The `+ Send` trait object is what the pipelined sealing path hands to
// pool workers; see [`crate::pipeline`].
impl_record_store_for_box!(Box<dyn RecordStore + Send>);

/// Buffers records in memory (the profiler's optimizer mode).
#[derive(Debug, Default)]
pub struct InMemoryStore {
    steps: Vec<StepRecord>,
    windows: Vec<WindowRecord>,
}

impl InMemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stored step records.
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// Stored window records.
    pub fn windows(&self) -> &[WindowRecord] {
        &self.windows
    }
}

impl RecordStore for InMemoryStore {
    fn put_step(&mut self, record: &StepRecord) -> io::Result<()> {
        self.steps.push(record.clone());
        Ok(())
    }

    fn put_window(&mut self, record: &WindowRecord) -> io::Result<()> {
        self.windows.push(record.clone());
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// On-disk record encodings a record directory can hold. Both formats
/// share the manifest, the `.part`-then-rename sealing discipline, and the
/// acknowledged-prefix recovery contract; [`recover_records`] picks the
/// right loader from what is on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreFormat {
    /// One JSON object per line (`steps.jsonl` / `windows.jsonl`).
    #[default]
    Jsonl,
    /// Length-prefixed checksummed binary segments (`seg-*.bin`); see
    /// [`crate::binfmt`] and [`crate::segstore::BinaryStore`].
    Binary,
}

impl StoreFormat {
    /// Canonical CLI/manifest spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            StoreFormat::Jsonl => "jsonl",
            StoreFormat::Binary => "binary",
        }
    }
}

impl std::fmt::Display for StoreFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for StoreFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" => Ok(StoreFormat::Jsonl),
            "binary" => Ok(StoreFormat::Binary),
            other => Err(format!(
                "unknown store format {other:?} (expected jsonl or binary)"
            )),
        }
    }
}

/// Accounting for one sealed binary segment file, carried in the manifest.
/// The manifest's segment list is the authoritative set *and order* of
/// sealed segments: compaction commits by atomically rewriting this list,
/// so a crashed merge leaves either the old or the new set — recovery
/// ignores segment files the manifest does not name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// File name within the record directory (e.g. `seg-000002.bin`).
    #[serde(default)]
    pub name: String,
    /// Step records the segment holds.
    #[serde(default)]
    pub steps: u64,
    /// Window records the segment holds.
    #[serde(default)]
    pub windows: u64,
    /// File size in bytes, counted against the retention budget.
    #[serde(default)]
    pub bytes: u64,
}

/// Sidecar metadata of a record directory, replaced atomically on
/// every flush. The flushed counts are the store's acknowledgement
/// watermark: records beyond them were never guaranteed durable.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StoreManifest {
    /// Model of the recorded run, when the profiler labeled it.
    #[serde(default)]
    pub model: String,
    /// Dataset of the recorded run.
    #[serde(default)]
    pub dataset: String,
    /// Step records acknowledged (written and flushed).
    #[serde(default)]
    pub steps_flushed: u64,
    /// Window records acknowledged.
    #[serde(default)]
    pub windows_flushed: u64,
    /// Whether the stream was sealed by a clean shutdown.
    #[serde(default)]
    pub sealed: bool,
    /// Op names indexed by op id, persisted so recovery can label the
    /// records of a crashed run. Empty for streams written before the
    /// catalog was recorded.
    #[serde(default)]
    pub op_names: Vec<String>,
    /// Whether each op drives the MXUs, indexed like `op_names`.
    #[serde(default)]
    pub op_uses_mxu: Vec<bool>,
    /// Whether each op was observed on the host side, indexed like
    /// `op_names`.
    #[serde(default)]
    pub op_on_host: Vec<bool>,
    /// Record encoding of the directory: `"binary"` for segment streams,
    /// empty (the pre-format default) or `"jsonl"` for JSON lines.
    #[serde(default)]
    pub format: String,
    /// Sealed binary segments in record order. Empty for JSONL streams.
    #[serde(default)]
    pub segments: Vec<SegmentMeta>,
    /// Acknowledged step records deliberately dropped by the retention
    /// tier. Retired records are accounted, never silently lost:
    /// [`RecoverySummary::missing_acknowledged`] subtracts them.
    #[serde(default)]
    pub steps_retired: u64,
    /// Acknowledged window records dropped by retention.
    #[serde(default)]
    pub windows_retired: u64,
}

/// One tolerant JSONL load: the valid record prefix plus how many trailing
/// lines (torn or corrupt) were skipped to obtain it.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredLoad<T> {
    /// Records parsed from the valid prefix.
    pub records: Vec<T>,
    /// Non-empty lines skipped after the first malformed one.
    pub skipped_lines: usize,
}

/// Everything salvageable from a record directory, together with the
/// accounting needed to say what (if anything) was lost.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySummary {
    /// Recovered step records, sorted by step number.
    pub steps: Vec<StepRecord>,
    /// Recovered window records, sorted by window index.
    pub windows: Vec<WindowRecord>,
    /// Torn/corrupt step lines skipped at the tail.
    pub skipped_step_lines: usize,
    /// Torn/corrupt window lines skipped at the tail.
    pub skipped_window_lines: usize,
    /// The manifest, when one survived.
    pub manifest: Option<StoreManifest>,
    /// True when the sealed (renamed) record files were found; false when
    /// recovery had to read the in-progress `.part` stream of a crashed
    /// writer.
    pub sealed_files: bool,
}

impl RecoverySummary {
    /// Acknowledged records the recovery could NOT produce:
    /// `(missing_steps, missing_windows)` relative to the manifest's
    /// flushed counts. Zero means every acknowledged record survived; the
    /// unacknowledged suffix (post-last-flush) is not counted because the
    /// store never promised it.
    /// Records retired by the retention tier are subtracted first: they
    /// were dropped *with accounting*, which is not a loss.
    pub fn missing_acknowledged(&self) -> (u64, u64) {
        match &self.manifest {
            Some(m) => (
                m.steps_flushed
                    .saturating_sub(m.steps_retired)
                    .saturating_sub(self.steps.len() as u64),
                m.windows_flushed
                    .saturating_sub(m.windows_retired)
                    .saturating_sub(self.windows.len() as u64),
            ),
            None => (0, 0),
        }
    }

    /// True when any line had to be skipped or any acknowledged record is
    /// missing — i.e. the directory was left by a crashed writer.
    pub fn is_torn(&self) -> bool {
        let (ms, mw) = self.missing_acknowledged();
        self.skipped_step_lines > 0 || self.skipped_window_lines > 0 || ms > 0 || mw > 0
    }

    /// Reconstructs a best-effort [`Profile`] from the recovered records,
    /// good enough for the analyzer to cluster phases.
    ///
    /// The op catalog comes from the manifest when the writer persisted
    /// one ([`RecordStore::set_catalog`]); ops beyond it — or all ops, for
    /// streams recorded before the catalog was stored — fall back to
    /// `op<N>` placeholders. Step marks are synthesized from the step
    /// records themselves (every step's last event end); when three or
    /// more records survive, the highest step is treated as the
    /// session-shutdown record, mirroring a live profile's shape.
    pub fn to_profile(&self) -> Profile {
        let op_count = self
            .steps
            .iter()
            .flat_map(|r| r.ops.keys())
            .map(|op| op.0 as usize + 1)
            .max()
            .unwrap_or(0);
        let shutdown_step = if self.steps.len() >= 3 {
            self.steps.iter().map(|r| r.step).max().unwrap_or(0)
        } else {
            u64::MAX
        };
        let step_marks = self
            .steps
            .iter()
            .filter(|r| r.step > 0 && r.step < shutdown_step)
            .map(|r| (r.step, r.last_end))
            .collect();
        let manifest = self.manifest.clone().unwrap_or_default();
        let op_count = op_count.max(manifest.op_names.len());
        let mut op_names = manifest.op_names;
        for i in op_names.len()..op_count {
            op_names.push(format!("op{i}"));
        }
        let mut op_uses_mxu = manifest.op_uses_mxu;
        op_uses_mxu.resize(op_count, false);
        let mut op_on_host = manifest.op_on_host;
        op_on_host.resize(op_count, true);
        Profile {
            model: manifest.model,
            dataset: manifest.dataset,
            op_names,
            op_uses_mxu,
            op_on_host,
            steps: self.steps.clone(),
            windows: self.windows.clone(),
            step_marks,
            checkpoints: Vec::new(),
            dropped_windows: 0,
            lost_events: 0,
            store_errors: 0,
            store_error: None,
        }
    }
}

/// Streams records as JSON lines into `<dir>/steps.jsonl.part` and
/// `<dir>/windows.jsonl.part` (the profiler's analyzer mode), sealing them
/// to `steps.jsonl` / `windows.jsonl` on clean shutdown. See the module
/// docs for the crash-tolerance protocol.
#[derive(Debug)]
pub struct JsonlStore {
    dir: PathBuf,
    steps: BufWriter<File>,
    windows: BufWriter<File>,
    manifest: StoreManifest,
    steps_written: u64,
    windows_written: u64,
}

pub(crate) const STEPS_FILE: &str = "steps.jsonl";
pub(crate) const WINDOWS_FILE: &str = "windows.jsonl";
pub(crate) const MANIFEST_FILE: &str = "manifest.json";
pub(crate) const PART_SUFFIX: &str = ".part";
/// `StoreManifest::format` value of binary segment directories.
pub(crate) const FORMAT_BINARY: &str = "binary";

impl JsonlStore {
    /// Creates (or truncates) the record files under `dir`.
    ///
    /// # Errors
    ///
    /// Returns an error if `dir` cannot be created or the files cannot be
    /// opened.
    pub fn create(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        // Clear any sealed files from a previous run so loaders never mix
        // the old sealed stream with the new in-progress one. Stale binary
        // segments are cleared too: re-recording a directory in the other
        // format must not confuse format auto-detection.
        for name in [STEPS_FILE, WINDOWS_FILE, MANIFEST_FILE] {
            let _ = std::fs::remove_file(dir.join(name));
        }
        crate::segstore::remove_segment_files(dir);
        let store = JsonlStore {
            dir: dir.to_owned(),
            steps: BufWriter::new(File::create(part_path(dir, STEPS_FILE))?),
            windows: BufWriter::new(File::create(part_path(dir, WINDOWS_FILE))?),
            manifest: StoreManifest::default(),
            steps_written: 0,
            windows_written: 0,
        };
        store.write_manifest()?;
        Ok(store)
    }

    /// The directory records are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Atomically replaces `manifest.json` (write `.part`, then rename).
    fn write_manifest(&self) -> io::Result<()> {
        let part = part_path(&self.dir, MANIFEST_FILE);
        let text = serde_json::to_string(&self.manifest).map_err(io::Error::other)?;
        std::fs::write(&part, text)?;
        std::fs::rename(&part, self.dir.join(MANIFEST_FILE))
    }

    /// Reads back all step records from `dir`, recovering past a torn
    /// tail. Prefer [`JsonlStore::recover`] when the skip counts matter.
    ///
    /// # Errors
    ///
    /// Returns an error when neither `steps.jsonl` nor its `.part` stream
    /// exists or cannot be read.
    pub fn load_steps(dir: &Path) -> io::Result<Vec<StepRecord>> {
        Ok(load_jsonl(&record_path(dir, STEPS_FILE)?)?.records)
    }

    /// Reads back all window records from `dir`, recovering past a torn
    /// tail.
    ///
    /// # Errors
    ///
    /// Returns an error when neither `windows.jsonl` nor its `.part`
    /// stream exists or cannot be read.
    pub fn load_windows(dir: &Path) -> io::Result<Vec<WindowRecord>> {
        Ok(load_jsonl(&record_path(dir, WINDOWS_FILE)?)?.records)
    }

    /// Reads the manifest, when one exists.
    ///
    /// # Errors
    ///
    /// Returns an error when the manifest exists but cannot be parsed.
    pub fn load_manifest(dir: &Path) -> io::Result<Option<StoreManifest>> {
        let path = dir.join(MANIFEST_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map(Some)
            .map_err(io::Error::other)
    }

    /// Recovers everything salvageable from a record directory: the valid
    /// prefix of both record streams (sealed files when present, the torn
    /// `.part` streams of a crashed writer otherwise) plus the manifest
    /// accounting.
    ///
    /// # Errors
    ///
    /// Returns an error when `dir` holds no recognizable record stream at
    /// all.
    pub fn recover(dir: &Path) -> io::Result<RecoverySummary> {
        let steps_path = record_path(dir, STEPS_FILE);
        let windows_path = record_path(dir, WINDOWS_FILE);
        if steps_path.is_err() && windows_path.is_err() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "no record stream (steps.jsonl[.part]) under {}",
                    dir.display()
                ),
            ));
        }
        let sealed_files = dir.join(STEPS_FILE).exists() || dir.join(WINDOWS_FILE).exists();
        let steps = match steps_path {
            Ok(path) => load_jsonl::<StepRecord>(&path)?,
            Err(_) => RecoveredLoad {
                records: Vec::new(),
                skipped_lines: 0,
            },
        };
        let windows = match windows_path {
            Ok(path) => load_jsonl::<WindowRecord>(&path)?,
            Err(_) => RecoveredLoad {
                records: Vec::new(),
                skipped_lines: 0,
            },
        };
        let mut summary = RecoverySummary {
            steps: steps.records,
            windows: windows.records,
            skipped_step_lines: steps.skipped_lines,
            skipped_window_lines: windows.skipped_lines,
            manifest: Self::load_manifest(dir).unwrap_or(None),
            sealed_files,
        };
        summary.steps.sort_by_key(|r| r.step);
        summary.windows.sort_by_key(|w| w.index);
        Ok(summary)
    }
}

/// The live path of a record file: the sealed name when present, else the
/// in-progress `.part` stream.
fn record_path(dir: &Path, name: &str) -> io::Result<PathBuf> {
    let sealed = dir.join(name);
    if sealed.exists() {
        return Ok(sealed);
    }
    let part = part_path(dir, name);
    if part.exists() {
        return Ok(part);
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        format!("{} not found (nor its .part stream)", sealed.display()),
    ))
}

pub(crate) fn part_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}{PART_SUFFIX}"))
}

/// Recovers a record directory of either format, auto-detecting the
/// encoding: the manifest's `format` field when one survived, else the
/// presence of binary segment files, else JSONL. `analyze --recover` and
/// the facade route through here so callers never need to know which
/// format wrote the directory.
///
/// # Errors
///
/// Returns an error when `dir` holds no recognizable record stream at all.
pub fn recover_records(dir: &Path) -> io::Result<RecoverySummary> {
    let manifest = JsonlStore::load_manifest(dir).unwrap_or(None);
    let binary = match &manifest {
        Some(m) if m.format == FORMAT_BINARY => true,
        Some(_) => false,
        None => crate::segstore::has_segment_files(dir),
    };
    if binary {
        crate::segstore::BinaryStore::recover(dir)
    } else {
        JsonlStore::recover(dir)
    }
}

/// Loads a JSONL file tolerantly: parses records until the first malformed
/// line (a torn tail after a crash, or corruption), then stops and reports
/// how many non-empty lines were left unparsed. A `kill -9` mid-write can
/// only tear the final line, so the valid prefix is exactly the records
/// fully written before the crash.
fn load_jsonl<T: serde::de::DeserializeOwned>(path: &Path) -> io::Result<RecoveredLoad<T>> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut records = Vec::new();
    let mut skipped_lines = 0usize;
    let mut torn = false;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // Read raw bytes: a torn tail may not even be valid UTF-8, and
        // that must count as a skipped line, not a failed load.
        if reader.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        let line = String::from_utf8_lossy(&buf);
        if line.trim().is_empty() {
            continue;
        }
        if torn {
            skipped_lines += 1;
            continue;
        }
        match serde_json::from_str(line.trim_end()) {
            Ok(record) => records.push(record),
            Err(_) => {
                torn = true;
                skipped_lines += 1;
            }
        }
    }
    Ok(RecoveredLoad {
        records,
        skipped_lines,
    })
}

impl RecordStore for JsonlStore {
    fn put_step(&mut self, record: &StepRecord) -> io::Result<()> {
        serde_json::to_writer(&mut self.steps, record).map_err(io::Error::other)?;
        self.steps.write_all(b"\n")?;
        self.steps_written += 1;
        Ok(())
    }

    fn put_window(&mut self, record: &WindowRecord) -> io::Result<()> {
        serde_json::to_writer(&mut self.windows, record).map_err(io::Error::other)?;
        self.windows.write_all(b"\n")?;
        self.windows_written += 1;
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.steps.flush()?;
        self.windows.flush()?;
        // Only now are the written records acknowledged.
        self.manifest.steps_flushed = self.steps_written;
        self.manifest.windows_flushed = self.windows_written;
        self.write_manifest()
    }

    fn seal(&mut self) -> io::Result<()> {
        self.steps.flush()?;
        self.windows.flush()?;
        std::fs::rename(part_path(&self.dir, STEPS_FILE), self.dir.join(STEPS_FILE))?;
        std::fs::rename(
            part_path(&self.dir, WINDOWS_FILE),
            self.dir.join(WINDOWS_FILE),
        )?;
        self.manifest.steps_flushed = self.steps_written;
        self.manifest.windows_flushed = self.windows_written;
        self.manifest.sealed = true;
        self.write_manifest()
    }

    fn set_meta(&mut self, model: &str, dataset: &str) {
        self.manifest.model = model.to_owned();
        self.manifest.dataset = dataset.to_owned();
        // Persist right away so a crash before the first flush still
        // leaves a labeled manifest. Best-effort: a failure here recurs
        // (and is counted) at the next flush, which rewrites the manifest.
        let _ = self.write_manifest();
    }

    fn set_catalog(&mut self, names: &[String], uses_mxu: &[bool], on_host: &[bool]) {
        self.manifest.op_names = names.to_vec();
        self.manifest.op_uses_mxu = uses_mxu.to_vec();
        self.manifest.op_on_host = on_host.to_vec();
        // Same best-effort persistence as set_meta: a crash at any later
        // point must still recover real operator names.
        let _ = self.write_manifest();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::{OpId, SimDuration, SimTime, Track};

    fn sample_step(step: u64) -> StepRecord {
        let mut r = StepRecord::new(step);
        r.absorb(
            OpId(1),
            Track::TpuCore(0),
            SimTime::from_micros(10),
            SimDuration::from_micros(5),
            SimDuration::from_micros(2),
        );
        r
    }

    fn sample_window() -> WindowRecord {
        WindowRecord {
            index: 0,
            start: SimTime::from_micros(0),
            end: SimTime::from_micros(100),
            events: 3,
            tpu_busy: SimDuration::from_micros(40),
            mxu_busy: SimDuration::from_micros(10),
            first_step: 1,
            last_step: 2,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tpupoint-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_store_accumulates() {
        let mut store = InMemoryStore::new();
        store.put_step(&sample_step(1)).unwrap();
        store.put_step(&sample_step(2)).unwrap();
        store.put_window(&sample_window()).unwrap();
        assert_eq!(store.steps().len(), 2);
        assert_eq!(store.windows().len(), 1);
    }

    #[test]
    fn jsonl_store_round_trips_after_seal() {
        let dir = tmp_dir("roundtrip");
        {
            let mut store = JsonlStore::create(&dir).unwrap();
            store.set_meta("demo-mlp", "synthetic");
            store.put_step(&sample_step(7)).unwrap();
            store.put_window(&sample_window()).unwrap();
            store.seal().unwrap();
        }
        assert!(dir.join("steps.jsonl").exists(), "sealed file renamed");
        assert!(!dir.join("steps.jsonl.part").exists());
        let steps = JsonlStore::load_steps(&dir).unwrap();
        let windows = JsonlStore::load_windows(&dir).unwrap();
        assert_eq!(steps, vec![sample_step(7)]);
        assert_eq!(windows, vec![sample_window()]);
        let manifest = JsonlStore::load_manifest(&dir).unwrap().unwrap();
        assert!(manifest.sealed);
        assert_eq!(manifest.steps_flushed, 1);
        assert_eq!(manifest.model, "demo-mlp");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsealed_part_stream_is_loadable() {
        let dir = tmp_dir("unsealed");
        let mut store = JsonlStore::create(&dir).unwrap();
        store.put_step(&sample_step(1)).unwrap();
        store.flush().unwrap();
        // No seal: the writer "crashed". The .part stream still loads.
        let steps = JsonlStore::load_steps(&dir).unwrap();
        assert_eq!(steps, vec![sample_step(1)]);
        let manifest = JsonlStore::load_manifest(&dir).unwrap().unwrap();
        assert!(!manifest.sealed);
        assert_eq!(manifest.steps_flushed, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_valid_prefix() {
        let dir = tmp_dir("torn");
        let mut store = JsonlStore::create(&dir).unwrap();
        for step in 1..=3 {
            store.put_step(&sample_step(step)).unwrap();
        }
        store.flush().unwrap();
        // Tear the tail: append half a record, as a kill -9 would leave.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("steps.jsonl.part"))
            .unwrap();
        f.write_all(b"{\"step\":4,\"ops\"").unwrap();
        drop(store);

        let summary = JsonlStore::recover(&dir).unwrap();
        assert_eq!(summary.steps.len(), 3);
        assert_eq!(summary.skipped_step_lines, 1);
        assert_eq!(summary.missing_acknowledged(), (0, 0));
        assert!(summary.is_torn());
        assert!(!summary.sealed_files);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_reports_missing_acknowledged_records() {
        let dir = tmp_dir("missing");
        let mut store = JsonlStore::create(&dir).unwrap();
        for step in 1..=5 {
            store.put_step(&sample_step(step)).unwrap();
        }
        store.flush().unwrap();
        drop(store);
        // Corrupt record 3 in place: everything acknowledged after it is
        // lost to prefix recovery.
        let path = dir.join("steps.jsonl.part");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mangled = format!(
            "{}\n{}\nGARBAGE\n{}\n{}\n",
            lines[0], lines[1], lines[3], lines[4]
        );
        std::fs::write(&path, mangled).unwrap();

        let summary = JsonlStore::recover(&dir).unwrap();
        assert_eq!(summary.steps.len(), 2);
        assert_eq!(
            summary.skipped_step_lines, 3,
            "garbage line + 2 good ones after it"
        );
        assert_eq!(summary.missing_acknowledged().0, 3);
        assert!(summary.is_torn());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovered_profile_is_analyzable_shape() {
        let dir = tmp_dir("to-profile");
        let mut store = JsonlStore::create(&dir).unwrap();
        store.set_meta("bert", "mrpc");
        for step in 0..=6 {
            store.put_step(&sample_step(step)).unwrap();
        }
        store.put_window(&sample_window()).unwrap();
        store.seal().unwrap();
        let summary = JsonlStore::recover(&dir).unwrap();
        let profile = summary.to_profile();
        assert_eq!(profile.model, "bert");
        assert_eq!(profile.dataset, "mrpc");
        assert_eq!(profile.steps.len(), 7);
        assert_eq!(profile.windows.len(), 1);
        assert_eq!(profile.op_names.len(), 2, "max OpId was 1");
        // Marks exclude step 0 and the highest (shutdown) record.
        let marked: Vec<u64> = profile.step_marks.iter().map(|(s, _)| *s).collect();
        assert_eq!(marked, vec![1, 2, 3, 4, 5]);
        assert_eq!(profile.training_records().len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_missing_dir_errors() {
        let missing = Path::new("/definitely/not/here");
        assert!(JsonlStore::load_steps(missing).is_err());
        assert!(JsonlStore::recover(missing).is_err());
    }

    #[test]
    fn create_clears_previous_sealed_run() {
        let dir = tmp_dir("recreate");
        {
            let mut store = JsonlStore::create(&dir).unwrap();
            store.put_step(&sample_step(1)).unwrap();
            store.seal().unwrap();
        }
        {
            let mut store = JsonlStore::create(&dir).unwrap();
            store.put_step(&sample_step(2)).unwrap();
            store.put_step(&sample_step(3)).unwrap();
            store.seal().unwrap();
        }
        let steps = JsonlStore::load_steps(&dir).unwrap();
        assert_eq!(steps.len(), 2, "old sealed stream must not leak through");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn boxed_dyn_store_delegates() {
        let mut store: Box<dyn RecordStore> = Box::new(InMemoryStore::new());
        store.put_step(&sample_step(1)).unwrap();
        store.put_window(&sample_window()).unwrap();
        store.flush().unwrap();
        store.seal().unwrap();
        store.set_meta("m", "d");
    }
}
