//! Recording backends for profile records.
//!
//! The paper's profiler either buffers records in host memory (optimizer
//! mode) or has a recording thread persist them to Cloud Storage (analyzer
//! mode). [`InMemoryStore`] and [`JsonlStore`] are those two backends; the
//! JSONL files stand in for the Storage Bucket.

use crate::record::StepRecord;
use crate::window::WindowRecord;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Destination for sealed profile records.
pub trait RecordStore {
    /// Persists one step record.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the backing medium.
    fn put_step(&mut self, record: &StepRecord) -> io::Result<()>;

    /// Persists one window record.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the backing medium.
    fn put_window(&mut self, record: &WindowRecord) -> io::Result<()>;

    /// Flushes buffered writes.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the backing medium.
    fn flush(&mut self) -> io::Result<()>;
}

/// Buffers records in memory (the profiler's optimizer mode).
#[derive(Debug, Default)]
pub struct InMemoryStore {
    steps: Vec<StepRecord>,
    windows: Vec<WindowRecord>,
}

impl InMemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stored step records.
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// Stored window records.
    pub fn windows(&self) -> &[WindowRecord] {
        &self.windows
    }
}

impl RecordStore for InMemoryStore {
    fn put_step(&mut self, record: &StepRecord) -> io::Result<()> {
        self.steps.push(record.clone());
        Ok(())
    }

    fn put_window(&mut self, record: &WindowRecord) -> io::Result<()> {
        self.windows.push(record.clone());
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams records as JSON lines into `<dir>/steps.jsonl` and
/// `<dir>/windows.jsonl` (the profiler's analyzer mode).
#[derive(Debug)]
pub struct JsonlStore {
    dir: PathBuf,
    steps: BufWriter<File>,
    windows: BufWriter<File>,
}

impl JsonlStore {
    /// Creates (or truncates) the record files under `dir`.
    ///
    /// # Errors
    ///
    /// Returns an error if `dir` cannot be created or the files cannot be
    /// opened.
    pub fn create(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(JsonlStore {
            dir: dir.to_owned(),
            steps: BufWriter::new(File::create(dir.join("steps.jsonl"))?),
            windows: BufWriter::new(File::create(dir.join("windows.jsonl"))?),
        })
    }

    /// The directory records are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Reads back all step records from `dir`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed JSON.
    pub fn load_steps(dir: &Path) -> io::Result<Vec<StepRecord>> {
        load_jsonl(&dir.join("steps.jsonl"))
    }

    /// Reads back all window records from `dir`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or malformed JSON.
    pub fn load_windows(dir: &Path) -> io::Result<Vec<WindowRecord>> {
        load_jsonl(&dir.join("windows.jsonl"))
    }
}

fn load_jsonl<T: serde::de::DeserializeOwned>(path: &Path) -> io::Result<Vec<T>> {
    let reader = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        out.push(serde_json::from_str(&line).map_err(io::Error::other)?);
    }
    Ok(out)
}

impl RecordStore for JsonlStore {
    fn put_step(&mut self, record: &StepRecord) -> io::Result<()> {
        serde_json::to_writer(&mut self.steps, record).map_err(io::Error::other)?;
        self.steps.write_all(b"\n")
    }

    fn put_window(&mut self, record: &WindowRecord) -> io::Result<()> {
        serde_json::to_writer(&mut self.windows, record).map_err(io::Error::other)?;
        self.windows.write_all(b"\n")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.steps.flush()?;
        self.windows.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::{OpId, SimDuration, SimTime, Track};

    fn sample_step(step: u64) -> StepRecord {
        let mut r = StepRecord::new(step);
        r.absorb(
            OpId(1),
            Track::TpuCore(0),
            SimTime::from_micros(10),
            SimDuration::from_micros(5),
            SimDuration::from_micros(2),
        );
        r
    }

    fn sample_window() -> WindowRecord {
        WindowRecord {
            index: 0,
            start: SimTime::from_micros(0),
            end: SimTime::from_micros(100),
            events: 3,
            tpu_busy: SimDuration::from_micros(40),
            mxu_busy: SimDuration::from_micros(10),
            first_step: 1,
            last_step: 2,
        }
    }

    #[test]
    fn in_memory_store_accumulates() {
        let mut store = InMemoryStore::new();
        store.put_step(&sample_step(1)).unwrap();
        store.put_step(&sample_step(2)).unwrap();
        store.put_window(&sample_window()).unwrap();
        assert_eq!(store.steps().len(), 2);
        assert_eq!(store.windows().len(), 1);
    }

    #[test]
    fn jsonl_store_round_trips() {
        let dir = std::env::temp_dir().join(format!("tpupoint-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut store = JsonlStore::create(&dir).unwrap();
            store.put_step(&sample_step(7)).unwrap();
            store.put_window(&sample_window()).unwrap();
            store.flush().unwrap();
        }
        let steps = JsonlStore::load_steps(&dir).unwrap();
        let windows = JsonlStore::load_windows(&dir).unwrap();
        assert_eq!(steps, vec![sample_step(7)]);
        assert_eq!(windows, vec![sample_window()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loading_missing_dir_errors() {
        let missing = Path::new("/definitely/not/here");
        assert!(JsonlStore::load_steps(missing).is_err());
    }
}
