//! Profile windows: the 60,000 ms / 1,000,000-event capped responses the
//! Cloud TPU profiling service returns (Section III-A).

use serde::{Deserialize, Serialize};
use tpupoint_simcore::{SimDuration, SimTime};

/// Metadata of one sealed profile window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowRecord {
    /// Sequence number of the window within the run.
    pub index: u64,
    /// Earliest event start inside the window.
    pub start: SimTime,
    /// Latest event end inside the window.
    pub end: SimTime,
    /// Events captured.
    pub events: u64,
    /// TPU busy time inside the window.
    pub tpu_busy: SimDuration,
    /// MXU-active time inside the window.
    pub mxu_busy: SimDuration,
    /// Inclusive range of profile steps the window overlaps.
    pub first_step: u64,
    /// See `first_step`.
    pub last_step: u64,
}

impl WindowRecord {
    /// Wall span of the window.
    pub fn span(&self) -> SimDuration {
        if self.end >= self.start {
            self.end - self.start
        } else {
            SimDuration::ZERO
        }
    }

    /// TPU idle fraction over the window — the per-profile idle metadata
    /// the paper's profiler attaches to each response.
    pub fn tpu_idle_fraction(&self) -> f64 {
        let span = self.span().as_micros() as f64;
        if span <= 0.0 {
            return 0.0;
        }
        (1.0 - self.tpu_busy.as_micros() as f64 / span).clamp(0.0, 1.0)
    }

    /// MXU utilization over the window.
    pub fn mxu_utilization(&self) -> f64 {
        let span = self.span().as_micros() as f64;
        if span <= 0.0 {
            return 0.0;
        }
        (self.mxu_busy.as_micros() as f64 / span).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(span_us: u64, busy_us: u64, mxu_us: u64) -> WindowRecord {
        WindowRecord {
            index: 0,
            start: SimTime::from_micros(1_000),
            end: SimTime::from_micros(1_000 + span_us),
            events: 10,
            tpu_busy: SimDuration::from_micros(busy_us),
            mxu_busy: SimDuration::from_micros(mxu_us),
            first_step: 1,
            last_step: 4,
        }
    }

    #[test]
    fn idle_and_mxu_fractions() {
        let w = window(1_000, 600, 150);
        assert!((w.tpu_idle_fraction() - 0.4).abs() < 1e-9);
        assert!((w.mxu_utilization() - 0.15).abs() < 1e-9);
    }

    #[test]
    fn fractions_clamp_to_unit_interval() {
        let w = window(100, 500, 500); // busy exceeds span (overlap artifact)
        assert_eq!(w.tpu_idle_fraction(), 0.0);
        assert_eq!(w.mxu_utilization(), 1.0);
    }

    #[test]
    fn empty_window_yields_zero_metrics() {
        let mut w = window(0, 0, 0);
        w.end = w.start;
        assert_eq!(w.span(), SimDuration::ZERO);
        assert_eq!(w.tpu_idle_fraction(), 0.0);
        assert_eq!(w.mxu_utilization(), 0.0);
    }
}
