//! Auditing of profile-window streams.
//!
//! The real profiling thread requests profiles back to back, but responses
//! can be delayed or lost; gaps between windows mean unobserved execution
//! and overlaps mean double-counted busy time. The audit quantifies both
//! so downstream consumers know how trustworthy a profile is.

use crate::window::WindowRecord;
use serde::{Deserialize, Serialize};
use tpupoint_simcore::SimDuration;

/// Result of auditing a window stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowAudit {
    /// Number of windows inspected.
    pub windows: u64,
    /// Total events across windows.
    pub events: u64,
    /// `(index of the window before the gap, gap duration)` for every gap
    /// larger than the tolerance.
    pub gaps: Vec<(u64, SimDuration)>,
    /// `(index of the earlier window, overlap duration)` for every pair of
    /// consecutive windows that overlap in time.
    pub overlaps: Vec<(u64, SimDuration)>,
    /// Total unobserved time (sum of gaps).
    pub unobserved: SimDuration,
    /// Span from the first window's start to the last window's end.
    pub covered_span: SimDuration,
    /// Largest single-window event count (for checking the 1M cap).
    pub max_window_events: u64,
    /// Longest single-window span (for checking the 60 s cap).
    pub max_window_span: SimDuration,
}

impl WindowAudit {
    /// Fraction of the covered span that fell into gaps.
    pub fn unobserved_fraction(&self) -> f64 {
        let span = self.covered_span.as_micros();
        if span == 0 {
            return 0.0;
        }
        (self.unobserved.as_micros() as f64 / span as f64).clamp(0.0, 1.0)
    }

    /// True when the stream is contiguous and within the given caps.
    pub fn is_clean(&self, max_events: u64, max_span: SimDuration) -> bool {
        self.gaps.is_empty()
            && self.overlaps.is_empty()
            && self.max_window_events <= max_events
            && self.max_window_span <= max_span
    }
}

/// Audits consecutive windows, flagging gaps longer than `gap_tolerance`.
///
/// Windows are expected in capture order; out-of-order streams show up as
/// overlaps.
pub fn audit_windows(windows: &[WindowRecord], gap_tolerance: SimDuration) -> WindowAudit {
    let mut audit = WindowAudit {
        windows: windows.len() as u64,
        events: windows.iter().map(|w| w.events).sum(),
        gaps: Vec::new(),
        overlaps: Vec::new(),
        unobserved: SimDuration::ZERO,
        covered_span: SimDuration::ZERO,
        max_window_events: windows.iter().map(|w| w.events).max().unwrap_or(0),
        max_window_span: windows
            .iter()
            .map(|w| w.span())
            .max()
            .unwrap_or(SimDuration::ZERO),
    };
    if let (Some(first), Some(last)) = (windows.first(), windows.last()) {
        if last.end > first.start {
            audit.covered_span = last.end - first.start;
        }
    }
    for pair in windows.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if b.start > a.end {
            let gap = b.start - a.end;
            if gap > gap_tolerance {
                audit.gaps.push((a.index, gap));
                audit.unobserved += gap;
            }
        } else if a.end > b.start {
            // Clip to the shared region so a window fully contained in
            // its predecessor doesn't overstate the overlap.
            let overlap_end = if b.end < a.end { b.end } else { a.end };
            audit.overlaps.push((a.index, overlap_end - b.start));
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::SimTime;

    fn window(index: u64, start_us: u64, end_us: u64, events: u64) -> WindowRecord {
        WindowRecord {
            index,
            start: SimTime::from_micros(start_us),
            end: SimTime::from_micros(end_us),
            events,
            tpu_busy: SimDuration::ZERO,
            mxu_busy: SimDuration::ZERO,
            first_step: 0,
            last_step: 0,
        }
    }

    #[test]
    fn contiguous_stream_is_clean() {
        let windows = vec![
            window(0, 0, 100, 10),
            window(1, 100, 250, 12),
            window(2, 250, 400, 9),
        ];
        let audit = audit_windows(&windows, SimDuration::ZERO);
        assert!(audit.gaps.is_empty());
        assert!(audit.overlaps.is_empty());
        assert_eq!(audit.events, 31);
        assert_eq!(audit.covered_span.as_micros(), 400);
        assert!(audit.is_clean(100, SimDuration::from_micros(200)));
        assert_eq!(audit.unobserved_fraction(), 0.0);
    }

    #[test]
    fn gaps_are_detected_and_summed() {
        let windows = vec![window(0, 0, 100, 5), window(1, 300, 400, 5)];
        let audit = audit_windows(&windows, SimDuration::from_micros(50));
        assert_eq!(audit.gaps, vec![(0, SimDuration::from_micros(200))]);
        assert_eq!(audit.unobserved.as_micros(), 200);
        assert!((audit.unobserved_fraction() - 0.5).abs() < 1e-9);
        assert!(!audit.is_clean(100, SimDuration::from_secs(1)));
    }

    #[test]
    fn small_gaps_within_tolerance_pass() {
        let windows = vec![window(0, 0, 100, 5), window(1, 120, 200, 5)];
        let audit = audit_windows(&windows, SimDuration::from_micros(50));
        assert!(audit.gaps.is_empty());
    }

    #[test]
    fn overlaps_are_flagged() {
        let windows = vec![window(0, 0, 150, 5), window(1, 100, 200, 5)];
        let audit = audit_windows(&windows, SimDuration::ZERO);
        assert_eq!(audit.overlaps, vec![(0, SimDuration::from_micros(50))]);
    }

    #[test]
    fn cap_violations_fail_cleanliness() {
        let windows = vec![window(0, 0, 100, 2_000_000)];
        let audit = audit_windows(&windows, SimDuration::ZERO);
        assert_eq!(audit.max_window_events, 2_000_000);
        assert!(!audit.is_clean(1_000_000, SimDuration::from_secs(60)));
    }

    #[test]
    fn empty_stream_is_trivially_clean() {
        let audit = audit_windows(&[], SimDuration::ZERO);
        assert!(audit.is_clean(1, SimDuration::ZERO));
        assert_eq!(audit.unobserved_fraction(), 0.0);
        assert_eq!(audit.windows, 0);
        assert_eq!(audit.events, 0);
        assert_eq!(audit.covered_span, SimDuration::ZERO);
        assert_eq!(audit.max_window_events, 0);
        assert_eq!(audit.max_window_span, SimDuration::ZERO);
    }

    #[test]
    fn single_window_covers_exactly_itself() {
        let audit = audit_windows(&[window(0, 50, 350, 42)], SimDuration::ZERO);
        assert!(audit.gaps.is_empty());
        assert!(audit.overlaps.is_empty());
        assert_eq!(audit.windows, 1);
        assert_eq!(audit.covered_span.as_micros(), 300);
        assert_eq!(audit.max_window_span.as_micros(), 300);
        assert_eq!(audit.max_window_events, 42);
        assert!(audit.is_clean(42, SimDuration::from_micros(300)));
    }

    #[test]
    fn zero_duration_windows_neither_gap_nor_overlap() {
        // Degenerate instant windows (start == end) can show up when a
        // profile response arrives with no observed execution in it.
        let windows = vec![
            window(0, 100, 100, 0),
            window(1, 100, 100, 0),
            window(2, 100, 200, 3),
        ];
        let audit = audit_windows(&windows, SimDuration::ZERO);
        assert!(audit.gaps.is_empty(), "{:?}", audit.gaps);
        assert!(audit.overlaps.is_empty(), "{:?}", audit.overlaps);
        assert_eq!(audit.covered_span.as_micros(), 100);
        assert_eq!(audit.unobserved_fraction(), 0.0);
        // A stream of only instant windows has zero covered span, which
        // must not divide-by-zero in the fraction.
        let degenerate = audit_windows(&[window(0, 5, 5, 0)], SimDuration::ZERO);
        assert_eq!(degenerate.covered_span, SimDuration::ZERO);
        assert_eq!(degenerate.unobserved_fraction(), 0.0);
    }

    #[test]
    fn gap_exactly_at_tolerance_is_not_flagged() {
        // The tolerance is inclusive: only gaps strictly larger count.
        let windows = vec![window(0, 0, 100, 1), window(1, 150, 200, 1)];
        let at = audit_windows(&windows, SimDuration::from_micros(50));
        assert!(at.gaps.is_empty(), "{:?}", at.gaps);
        assert_eq!(at.unobserved, SimDuration::ZERO);
        let just_over = audit_windows(&windows, SimDuration::from_micros(49));
        assert_eq!(just_over.gaps, vec![(0, SimDuration::from_micros(50))]);
    }

    #[test]
    fn fully_overlapping_windows_report_the_shorter_span() {
        // The second window sits entirely inside the first; the overlap
        // reported is the shared region (the inner window's whole span),
        // and the covered span still runs first-start to last-end.
        let windows = vec![window(0, 0, 400, 10), window(1, 100, 300, 4)];
        let audit = audit_windows(&windows, SimDuration::ZERO);
        assert_eq!(audit.overlaps, vec![(0, SimDuration::from_micros(200))]);
        assert!(audit.gaps.is_empty());
        assert_eq!(audit.covered_span.as_micros(), 300);
        assert!(!audit.is_clean(100, SimDuration::from_secs(1)));
    }

    #[test]
    fn identical_windows_overlap_completely() {
        let windows = vec![window(0, 0, 200, 5), window(1, 0, 200, 5)];
        let audit = audit_windows(&windows, SimDuration::ZERO);
        assert_eq!(audit.overlaps, vec![(0, SimDuration::from_micros(200))]);
        assert_eq!(audit.covered_span.as_micros(), 200);
    }
}
