//! Length-prefixed binary segment codec for profile records.
//!
//! A segment is a self-describing byte stream: an 8-byte header (magic
//! `TPSG`, format version, three reserved bytes) followed by frames. Each
//! frame carries one [`StepRecord`] or [`WindowRecord`]:
//!
//! ```text
//! +------+-------------+-------------+-----------------+
//! | kind | payload len | payload crc |     payload     |
//! | u8   | u32 LE      | u32 LE      | len bytes       |
//! +------+-------------+-------------+-----------------+
//! ```
//!
//! Payloads are LEB128 varints — the integer-heavy records (step numbers,
//! op counts, microsecond durations) compress to a fraction of their JSON
//! size and encode without any formatting work. The CRC-32 (IEEE) over the
//! payload plus the strict decoder make every torn tail, truncation, or
//! flipped byte detectable: [`read_segment`] stops at the first frame that
//! fails its length, checksum, or decode, and returns the valid prefix —
//! the same salvage contract as the JSONL loader's line-prefix recovery.
//!
//! The byte layout is locked by the golden test in
//! `crates/profiler/tests/binary_golden.rs`; bump [`SEGMENT_VERSION`] on
//! any change.

use crate::record::{OpStats, StepRecord};
use crate::window::WindowRecord;
use std::collections::BTreeMap;
use tpupoint_simcore::{OpId, SimDuration, SimTime};

/// First four bytes of every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"TPSG";
/// Format version carried in byte 4 of the header.
pub const SEGMENT_VERSION: u8 = 1;
/// Header length: magic + version + three reserved zero bytes.
pub const SEGMENT_HEADER_LEN: usize = 8;
/// Frame kind byte of a [`StepRecord`].
pub const KIND_STEP: u8 = 1;
/// Frame kind byte of a [`WindowRecord`].
pub const KIND_WINDOW: u8 = 2;
/// Bytes of framing around each payload (kind + length + checksum).
pub const FRAME_OVERHEAD: usize = 9;

/// The 8-byte header opening every segment file.
pub fn segment_header() -> [u8; SEGMENT_HEADER_LEN] {
    let mut header = [0u8; SEGMENT_HEADER_LEN];
    header[..4].copy_from_slice(&SEGMENT_MAGIC);
    header[4] = SEGMENT_VERSION;
    header
}

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven. The
// table is built at compile time so the hot ingest path pays one lookup
// per byte and nothing else.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends `value` as a LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint, advancing the cursor. `None` on truncation or
/// a varint longer than 10 bytes (which can never encode a `u64`).
fn get_varint(cursor: &mut &[u8]) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = cursor.split_first()?;
        *cursor = rest;
        if shift == 63 && byte > 1 {
            return None; // overflow: more than 64 bits of payload
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Encodes a step record payload (no framing) into `out`.
pub fn encode_step(record: &StepRecord, out: &mut Vec<u8>) {
    put_varint(out, record.step);
    put_varint(out, record.ops.len() as u64);
    for (op, stats) in &record.ops {
        put_varint(out, u64::from(op.0));
        put_varint(out, stats.count);
        put_varint(out, stats.total.as_micros());
    }
    put_varint(out, record.tpu_time.as_micros());
    put_varint(out, record.mxu_time.as_micros());
    put_varint(out, record.host_time.as_micros());
    put_varint(out, record.first_start.as_micros());
    put_varint(out, record.last_end.as_micros());
}

/// Decodes a step record payload. `None` unless the payload parses exactly
/// (no trailing bytes, ops in strictly ascending id order as encoded).
pub fn decode_step(payload: &[u8]) -> Option<StepRecord> {
    let mut cursor = payload;
    let step = get_varint(&mut cursor)?;
    let op_count = get_varint(&mut cursor)?;
    let mut ops = BTreeMap::new();
    let mut last_op: Option<u32> = None;
    for _ in 0..op_count {
        let op = u32::try_from(get_varint(&mut cursor)?).ok()?;
        if last_op.is_some_and(|prev| prev >= op) {
            return None; // not the canonical BTreeMap order: corrupt
        }
        last_op = Some(op);
        let count = get_varint(&mut cursor)?;
        let total = SimDuration::from_micros(get_varint(&mut cursor)?);
        ops.insert(OpId(op), OpStats { count, total });
    }
    let record = StepRecord {
        step,
        ops,
        tpu_time: SimDuration::from_micros(get_varint(&mut cursor)?),
        mxu_time: SimDuration::from_micros(get_varint(&mut cursor)?),
        host_time: SimDuration::from_micros(get_varint(&mut cursor)?),
        first_start: SimTime::from_micros(get_varint(&mut cursor)?),
        last_end: SimTime::from_micros(get_varint(&mut cursor)?),
    };
    cursor.is_empty().then_some(record)
}

/// Encodes a window record payload (no framing) into `out`.
pub fn encode_window(record: &WindowRecord, out: &mut Vec<u8>) {
    put_varint(out, record.index);
    put_varint(out, record.start.as_micros());
    put_varint(out, record.end.as_micros());
    put_varint(out, record.events);
    put_varint(out, record.tpu_busy.as_micros());
    put_varint(out, record.mxu_busy.as_micros());
    put_varint(out, record.first_step);
    put_varint(out, record.last_step);
}

/// Decodes a window record payload; strict like [`decode_step`].
pub fn decode_window(payload: &[u8]) -> Option<WindowRecord> {
    let mut cursor = payload;
    let record = WindowRecord {
        index: get_varint(&mut cursor)?,
        start: SimTime::from_micros(get_varint(&mut cursor)?),
        end: SimTime::from_micros(get_varint(&mut cursor)?),
        events: get_varint(&mut cursor)?,
        tpu_busy: SimDuration::from_micros(get_varint(&mut cursor)?),
        mxu_busy: SimDuration::from_micros(get_varint(&mut cursor)?),
        first_step: get_varint(&mut cursor)?,
        last_step: get_varint(&mut cursor)?,
    };
    cursor.is_empty().then_some(record)
}

/// Wraps an already-encoded payload in a frame (kind, length, checksum)
/// and appends it to `out`.
pub fn append_frame(kind: u8, payload: &[u8], out: &mut Vec<u8>) {
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Everything salvageable from one segment's bytes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SegmentRead {
    /// Step records decoded, in stream order.
    pub steps: Vec<StepRecord>,
    /// Window records decoded, in stream order.
    pub windows: Vec<WindowRecord>,
    /// Bytes of the valid prefix (header + intact frames). Compaction
    /// copies exactly `bytes[SEGMENT_HEADER_LEN..valid_len]`.
    pub valid_len: usize,
    /// True when the stream ended exactly on a frame boundary; false on a
    /// torn tail, corrupt frame, or bad header.
    pub clean: bool,
    /// Kind byte of the first invalid frame, when one was readable — lets
    /// recovery attribute a torn tail to the right record stream.
    pub torn_kind: Option<u8>,
}

/// Decodes a segment byte stream tolerantly: the valid frame prefix, never
/// a panic. A bad or truncated header yields an empty, unclean read;
/// corruption mid-stream keeps everything before the first bad frame.
pub fn read_segment(bytes: &[u8]) -> SegmentRead {
    let mut read = SegmentRead::default();
    if bytes.len() < SEGMENT_HEADER_LEN
        || bytes[..4] != SEGMENT_MAGIC
        || bytes[4] != SEGMENT_VERSION
    {
        return read;
    }
    let mut pos = SEGMENT_HEADER_LEN;
    loop {
        if pos == bytes.len() {
            read.clean = true;
            break;
        }
        let rest = &bytes[pos..];
        read.torn_kind = rest.first().copied();
        if rest.len() < FRAME_OVERHEAD {
            break; // torn mid-frame-header
        }
        let kind = rest[0];
        let len = u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]) as usize;
        let want = u32::from_le_bytes([rest[5], rest[6], rest[7], rest[8]]);
        // checked_add: on 32-bit targets a corrupt length near u32::MAX
        // would overflow the index sum — that must read as corruption,
        // never a (debug) panic.
        let Some(frame_len) = len.checked_add(FRAME_OVERHEAD) else {
            break;
        };
        let Some(payload) = rest.get(FRAME_OVERHEAD..frame_len) else {
            break; // length runs past the end: torn tail
        };
        if crc32(payload) != want {
            break;
        }
        match kind {
            KIND_STEP => match decode_step(payload) {
                Some(record) => read.steps.push(record),
                None => break,
            },
            KIND_WINDOW => match decode_window(payload) {
                Some(record) => read.windows.push(record),
                None => break,
            },
            _ => break, // unknown kind: cannot resync past it safely
        }
        pos += frame_len;
        read.valid_len = pos;
        read.torn_kind = None;
    }
    if read.valid_len == 0 {
        read.valid_len = SEGMENT_HEADER_LEN.min(bytes.len());
    }
    read
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpupoint_simcore::Track;

    fn sample_step(step: u64) -> StepRecord {
        let mut r = StepRecord::new(step);
        r.absorb(
            OpId(3),
            Track::TpuCore(0),
            SimTime::from_micros(10 + step),
            SimDuration::from_micros(5),
            SimDuration::from_micros(2),
        );
        r.absorb(
            OpId(700),
            Track::Host,
            SimTime::from_micros(20 + step),
            SimDuration::from_micros(9),
            SimDuration::ZERO,
        );
        r
    }

    fn sample_window(index: u64) -> WindowRecord {
        WindowRecord {
            index,
            start: SimTime::from_micros(index * 100),
            end: SimTime::from_micros(index * 100 + 90),
            events: 12,
            tpu_busy: SimDuration::from_micros(40),
            mxu_busy: SimDuration::from_micros(10),
            first_step: index,
            last_step: index + 1,
        }
    }

    fn encode_segment(steps: &[StepRecord], windows: &[WindowRecord]) -> Vec<u8> {
        let mut bytes = segment_header().to_vec();
        let mut payload = Vec::new();
        for record in steps {
            payload.clear();
            encode_step(record, &mut payload);
            append_frame(KIND_STEP, &payload, &mut bytes);
        }
        for record in windows {
            payload.clear();
            encode_window(record, &mut payload);
            append_frame(KIND_WINDOW, &payload, &mut bytes);
        }
        bytes
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for value in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, value);
            let mut cursor = buf.as_slice();
            assert_eq!(get_varint(&mut cursor), Some(value));
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut cursor: &[u8] = &[0x80];
        assert_eq!(get_varint(&mut cursor), None);
        // 11 continuation bytes cannot encode a u64.
        let long = [0x80u8; 10];
        let mut cursor: &[u8] = &long;
        assert_eq!(get_varint(&mut cursor), None);
    }

    #[test]
    fn records_round_trip() {
        let step = sample_step(42);
        let mut payload = Vec::new();
        encode_step(&step, &mut payload);
        assert_eq!(decode_step(&payload), Some(step));

        let window = sample_window(7);
        payload.clear();
        encode_window(&window, &mut payload);
        assert_eq!(decode_window(&payload), Some(window));
    }

    #[test]
    fn decoder_rejects_trailing_bytes() {
        let mut payload = Vec::new();
        encode_step(&sample_step(1), &mut payload);
        payload.push(0);
        assert_eq!(decode_step(&payload), None);
    }

    #[test]
    fn segment_round_trips_interleaved_frames() {
        let steps: Vec<StepRecord> = (0..5).map(sample_step).collect();
        let windows: Vec<WindowRecord> = (0..2).map(sample_window).collect();
        let bytes = encode_segment(&steps, &windows);
        let read = read_segment(&bytes);
        assert!(read.clean);
        assert_eq!(read.steps, steps);
        assert_eq!(read.windows, windows);
        assert_eq!(read.valid_len, bytes.len());
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let steps: Vec<StepRecord> = (0..4).map(sample_step).collect();
        let bytes = encode_segment(&steps, &[]);
        // Frame boundaries (including the bare header) are clean cuts;
        // every other truncation must read unclean and keep the prefix.
        let mut boundaries = vec![SEGMENT_HEADER_LEN];
        let mut payload = Vec::new();
        for record in &steps {
            payload.clear();
            encode_step(record, &mut payload);
            boundaries.push(boundaries.last().unwrap() + FRAME_OVERHEAD + payload.len());
        }
        for cut in SEGMENT_HEADER_LEN..bytes.len() {
            let read = read_segment(&bytes[..cut]);
            assert_eq!(read.clean, boundaries.contains(&cut), "cut at {cut}");
            assert_eq!(read.steps, steps[..read.steps.len()], "prefix at {cut}");
            if !read.clean {
                assert_eq!(read.torn_kind, Some(KIND_STEP));
            }
        }
    }

    #[test]
    fn any_byte_flip_is_detected_and_prefix_salvaged() {
        let steps: Vec<StepRecord> = (0..3).map(sample_step).collect();
        let bytes = encode_segment(&steps, &[sample_window(0)]);
        for i in 0..bytes.len() {
            let mut mangled = bytes.clone();
            mangled[i] ^= 0x41;
            let read = read_segment(&mangled);
            // Never a panic; decoded steps always form an exact prefix.
            assert_eq!(read.steps, steps[..read.steps.len()], "flip at {i}");
        }
    }

    #[test]
    fn corrupt_length_near_u32_max_reads_as_torn_never_panics() {
        // On 32-bit targets `len + FRAME_OVERHEAD` would overflow usize
        // for lengths near u32::MAX; the salvage contract demands that
        // read as a torn tail, not a (debug) panic.
        let steps: Vec<StepRecord> = (0..2).map(sample_step).collect();
        let mut bytes = encode_segment(&steps, &[]);
        bytes.push(KIND_STEP);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // corrupt length
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 32]);
        let read = read_segment(&bytes);
        assert!(!read.clean);
        assert_eq!(read.steps, steps, "valid prefix survives");
        assert_eq!(read.torn_kind, Some(KIND_STEP));
    }

    #[test]
    fn bad_header_reads_empty() {
        let read = read_segment(b"JUNKJUNKJUNK");
        assert!(!read.clean);
        assert!(read.steps.is_empty() && read.windows.is_empty());
        let read = read_segment(&[]);
        assert!(!read.clean);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
