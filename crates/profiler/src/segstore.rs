//! [`BinaryStore`]: the binary segment backend behind [`RecordStore`],
//! with background compaction and retention.
//!
//! # Layout and crash tolerance
//!
//! Records stream into one active segment, `seg-NNNNNN.bin.part`, framed
//! by [`crate::binfmt`]. When the active segment reaches
//! [`BinaryStoreConfig::segment_bytes`] it is flushed, committed to the
//! manifest's segment list — the *authoritative* set and order of sealed
//! segments — and then renamed to `seg-NNNNNN.bin`, the same
//! `.part`-then-rename discipline as the JSONL store. The manifest itself
//! is always replaced atomically, so every on-disk state a `kill -9` can
//! leave is one of:
//!
//! * a torn active `.part` tail — recovery salvages the valid frame
//!   prefix, exactly like the JSONL torn-line recovery;
//! * a manifest-listed segment still under its `.part` name (the commit
//!   precedes the sealing rename) — recovery reads the part file in its
//!   place, so the acknowledged records it holds are never orphaned;
//! * a renamed segment the manifest does not name — an uncommitted
//!   compaction output, ignored (its records live on in the still-listed
//!   input segments);
//! * a manifest naming only old or only new segments around a compaction
//!   — recovery reads whichever set the manifest committed, never a mix.
//!
//! # Compaction and retention
//!
//! A single-flighted maintenance task — spawned onto the shared
//! `tpupoint-par` pool when it has workers, run inline otherwise — merges
//! the oldest [`BinaryStoreConfig::compact_segments`] sealed segments into
//! one (scratch `.tmp` file, rename, then one atomic manifest rewrite
//! replacing the inputs) and then enforces the retention budget by
//! *retiring* the oldest segments: their record counts move into the
//! manifest's `steps_retired`/`windows_retired` **before** the file is
//! deleted, so [`RecoverySummary::missing_acknowledged`] stays zero — a
//! budgeted drop is accounted, never a loss. Retention refuses to touch a
//! segment holding records beyond the acknowledgement watermark.
//!
//! Observability: gauge `store.segments`, counters `store.compactions`,
//! `store.bytes_reclaimed`, `store.bytes_written`, `store.records_retired`.

use crate::binfmt::{self, KIND_STEP, KIND_WINDOW, SEGMENT_HEADER_LEN};
use crate::record::StepRecord;
use crate::store::{
    part_path, RecordStore, RecoverySummary, SegmentMeta, StoreManifest, FORMAT_BINARY,
    MANIFEST_FILE, STEPS_FILE, WINDOWS_FILE,
};
use crate::window::WindowRecord;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use tpupoint_obs::{Counter, Gauge};

const SEGMENT_PREFIX: &str = "seg-";
const SEGMENT_EXT: &str = ".bin";
const PART_EXT: &str = ".bin.part";
const TMP_EXT: &str = ".bin.tmp";

/// Tuning of the binary segment store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryStoreConfig {
    /// Rotation threshold: the active segment is sealed once it holds at
    /// least this many bytes.
    pub segment_bytes: u64,
    /// Merge the oldest sealed segments whenever at least this many exist
    /// (minimum 2). `usize::MAX` disables compaction.
    pub compact_segments: usize,
    /// Retention budget over sealed segment bytes; oldest segments are
    /// retired (with accounting) while the total exceeds it. `0` means
    /// unlimited.
    pub retention_bytes: u64,
    /// Run maintenance on the shared `tpupoint-par` pool when it has more
    /// than one participant; `false` forces inline maintenance (useful
    /// for deterministic tests).
    pub background: bool,
    /// Test hook: abort maintenance at the given point, simulating a
    /// `kill -9` mid-compaction. See the kill-point tests.
    pub crash_point: Option<CompactCrashPoint>,
}

impl Default for BinaryStoreConfig {
    fn default() -> Self {
        BinaryStoreConfig {
            segment_bytes: 256 * 1024,
            compact_segments: 4,
            retention_bytes: 0,
            background: true,
            crash_point: None,
        }
    }
}

/// Instants inside a compaction where a crash leaves an intermediate
/// on-disk state; the kill-point tests drive one merge to each and prove
/// recovery still reads a consistent (pre- or post-) segment set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactCrashPoint {
    /// Merged scratch `.tmp` written, not yet renamed.
    BeforeRename,
    /// Merged segment renamed into place, manifest not yet rewritten.
    BeforeManifest,
    /// Manifest rewritten, input segments not yet deleted.
    AfterManifest,
}

/// Self-observability handles, rebindable per job registry.
struct StoreObs {
    segments: Gauge,
    compactions: Counter,
    bytes_reclaimed: Counter,
    records_retired: Counter,
}

impl StoreObs {
    fn in_registry(metrics: &tpupoint_obs::Metrics) -> Self {
        StoreObs {
            segments: metrics.gauge("store.segments"),
            compactions: metrics.counter("store.compactions"),
            bytes_reclaimed: metrics.counter("store.bytes_reclaimed"),
            records_retired: metrics.counter("store.records_retired"),
        }
    }
}

/// Lifecycle of the single-flighted maintenance pass. `Queued` is kept
/// distinct from `Running` so a sealing writer can *steal* a pass that
/// sits in the pool FIFO but has not started: under `--pipeline-profiler`
/// `seal()` itself runs on a pool worker (inside the drain task), and
/// condvar-waiting there for a job queued behind it on the same worker
/// would deadlock the pool permanently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MaintenanceState {
    /// No pass scheduled or running.
    Idle,
    /// A background pass sits in the pool queue but has not started yet;
    /// whoever claims the slot first (the pool job or a stealing `seal`)
    /// runs the pass, and the other becomes a no-op.
    Queued,
    /// A pass is actively executing on some thread. Waiting for it is
    /// safe from anywhere: `maintain` makes no pool calls, so it always
    /// finishes without needing another pool slot.
    Running,
}

/// State shared between the writer and the maintenance task.
struct SharedState {
    manifest: StoreManifest,
    /// Next segment id to allocate; compaction and rotation both draw
    /// from it, so merged segments never collide with live ones.
    next_segment: u64,
    /// At most one maintenance pass is scheduled or running at a time,
    /// which is what lets compaction read and delete input segments
    /// without racing retention.
    maintenance: MaintenanceState,
    /// Self-observability handles, bound lazily on first use (to the
    /// process-wide registry) or by [`RecordStore::use_registry`] (to a
    /// fleet job's registry). Deferred past construction so a store the
    /// fleet rebinds right after creation never registers its series —
    /// in particular the `store.segments` sentinel the obs report keys
    /// on — with the global registry.
    obs: Option<StoreObs>,
}

impl SharedState {
    /// The obs handles, created against the process-wide registry on
    /// first use when no `use_registry` rebind happened earlier.
    fn obs(&mut self) -> &StoreObs {
        self.obs
            .get_or_insert_with(|| StoreObs::in_registry(tpupoint_obs::metrics()))
    }
}

struct StoreShared {
    dir: PathBuf,
    config: BinaryStoreConfig,
    state: Mutex<SharedState>,
    idle: Condvar,
}

impl StoreShared {
    /// Atomically replaces `manifest.json` (write `.part`, then rename).
    fn write_manifest(&self, manifest: &StoreManifest) -> io::Result<()> {
        let part = part_path(&self.dir, MANIFEST_FILE);
        let text = serde_json::to_string(manifest).map_err(io::Error::other)?;
        std::fs::write(&part, text)?;
        std::fs::rename(&part, self.dir.join(MANIFEST_FILE))
    }

    fn needs_maintenance(&self, state: &SharedState) -> bool {
        let segments = &state.manifest.segments;
        if segments.len() >= self.config.compact_segments.max(2) {
            return true;
        }
        self.config.retention_bytes > 0
            && segments.iter().map(|m| m.bytes).sum::<u64>() > self.config.retention_bytes
    }

    /// Claims the maintenance slot and runs compaction + retention, on the
    /// pool when configured and workers exist, inline otherwise.
    fn schedule_maintenance(self: &Arc<Self>) {
        let pool = tpupoint_par::pool();
        let background = self.config.background && pool.size() > 1;
        {
            let mut state = self.state.lock().expect("store state");
            if state.maintenance != MaintenanceState::Idle || !self.needs_maintenance(&state) {
                return;
            }
            state.maintenance = if background {
                MaintenanceState::Queued
            } else {
                MaintenanceState::Running
            };
        }
        if background {
            let shared = Arc::clone(self);
            pool.spawn_detached(move || shared.run_queued());
        } else {
            self.maintain_and_release();
        }
    }

    /// Entry point of a queued background pass: claim the slot, unless a
    /// sealing writer already stole the pass and ran it inline — then
    /// this job is a no-op.
    fn run_queued(&self) {
        {
            let mut state = self.state.lock().expect("store state");
            if state.maintenance != MaintenanceState::Queued {
                return;
            }
            state.maintenance = MaintenanceState::Running;
        }
        self.maintain_and_release();
    }

    /// Claims the maintenance slot for `seal`'s final synchronous pass. A
    /// `Queued` pass (scheduled onto the pool but not started) is stolen
    /// and will run here instead: never condvar-wait for a job that may
    /// sit *behind the caller* in the same pool's FIFO — with one worker
    /// and a pipelined seal, that wait could only ever deadlock. Only an
    /// actively `Running` pass is waited for, which is safe because its
    /// thread finishes without needing a pool slot.
    fn claim_maintenance(&self) {
        let mut state = self.state.lock().expect("store state");
        while state.maintenance == MaintenanceState::Running {
            state = self.idle.wait(state).expect("store state");
        }
        // Idle, or Queued-but-not-started: in the latter case the pool
        // job finds the slot taken (`run_queued`) and no-ops.
        state.maintenance = MaintenanceState::Running;
    }

    fn maintain_and_release(&self) {
        // Best-effort: an I/O failure (or a simulated crash point) leaves
        // the current consistent state in place; the next rotation
        // re-schedules.
        let _ = self.maintain();
        let mut state = self.state.lock().expect("store state");
        state.maintenance = MaintenanceState::Idle;
        drop(state);
        self.idle.notify_all();
    }

    fn maintain(&self) -> io::Result<()> {
        while self.compact_once()? {}
        while self.retire_once()? {}
        Ok(())
    }

    fn crash_at(&self, point: CompactCrashPoint) -> io::Result<()> {
        if self.config.crash_point == Some(point) {
            return Err(io::Error::other("simulated compaction crash"));
        }
        Ok(())
    }

    /// Merges the oldest `compact_segments` sealed segments into one new
    /// segment. The merge commits with a single atomic manifest rewrite;
    /// every earlier step only creates files recovery ignores.
    fn compact_once(&self) -> io::Result<bool> {
        let (inputs, merged_id) = {
            let mut state = self.state.lock().expect("store state");
            let k = self.config.compact_segments.max(2);
            if self.config.compact_segments == usize::MAX || state.manifest.segments.len() < k {
                return Ok(false);
            }
            let inputs = state.manifest.segments[..k].to_vec();
            let id = state.next_segment;
            state.next_segment += 1;
            (inputs, id)
        };
        // Read and merge outside the lock: inputs are sealed and
        // immutable, and single-flighted maintenance means nothing else
        // may delete them.
        let mut merged = binfmt::segment_header().to_vec();
        let mut steps = 0u64;
        let mut windows = 0u64;
        let mut input_bytes = 0u64;
        for meta in &inputs {
            let bytes = std::fs::read(self.dir.join(&meta.name))?;
            input_bytes += bytes.len() as u64;
            let read = binfmt::read_segment(&bytes);
            steps += read.steps.len() as u64;
            windows += read.windows.len() as u64;
            merged
                .extend_from_slice(&bytes[SEGMENT_HEADER_LEN.min(read.valid_len)..read.valid_len]);
        }
        let merged_name = segment_name(merged_id);
        let tmp = self
            .dir
            .join(format!("{SEGMENT_PREFIX}{merged_id:06}{TMP_EXT}"));
        std::fs::write(&tmp, &merged)?;
        self.crash_at(CompactCrashPoint::BeforeRename)?;
        std::fs::rename(&tmp, self.dir.join(&merged_name))?;
        self.crash_at(CompactCrashPoint::BeforeManifest)?;
        {
            let mut state = self.state.lock().expect("store state");
            let meta = SegmentMeta {
                name: merged_name,
                steps,
                windows,
                bytes: merged.len() as u64,
            };
            state.manifest.segments.splice(0..inputs.len(), [meta]);
            self.write_manifest(&state.manifest)?;
            // Net disk freed by the merge: duplicate headers plus any
            // invalid suffix the per-segment reads dropped.
            let reclaimed = input_bytes.saturating_sub(merged.len() as u64);
            let segments = state.manifest.segments.len() as f64;
            let obs = state.obs();
            obs.compactions.inc();
            obs.bytes_reclaimed.add(reclaimed);
            obs.segments.set(segments);
        }
        self.crash_at(CompactCrashPoint::AfterManifest)?;
        for meta in &inputs {
            let _ = std::fs::remove_file(self.dir.join(&meta.name));
        }
        Ok(true)
    }

    /// Retires the oldest sealed segment while the retention budget is
    /// exceeded. The manifest moves the records into the retired counts
    /// *before* the file is unlinked, so a crash anywhere in between
    /// still accounts for every acknowledged record.
    fn retire_once(&self) -> io::Result<bool> {
        if self.config.retention_bytes == 0 {
            return Ok(false);
        }
        let victim = {
            let mut state = self.state.lock().expect("store state");
            let total: u64 = state.manifest.segments.iter().map(|m| m.bytes).sum();
            if total <= self.config.retention_bytes {
                return Ok(false);
            }
            let Some(oldest) = state.manifest.segments.first().cloned() else {
                return Ok(false);
            };
            // Never retire records beyond the acknowledgement watermark:
            // dropping an unacknowledged record is allowed, but dropping
            // it *with retired accounting* would overstate the watermark.
            let acked = state.manifest.steps_retired + oldest.steps <= state.manifest.steps_flushed
                && state.manifest.windows_retired + oldest.windows
                    <= state.manifest.windows_flushed;
            if !acked {
                return Ok(false);
            }
            state.manifest.segments.remove(0);
            state.manifest.steps_retired += oldest.steps;
            state.manifest.windows_retired += oldest.windows;
            self.write_manifest(&state.manifest)?;
            let segments = state.manifest.segments.len() as f64;
            let obs = state.obs();
            obs.bytes_reclaimed.add(oldest.bytes);
            obs.records_retired.add(oldest.steps + oldest.windows);
            obs.segments.set(segments);
            oldest
        };
        let _ = std::fs::remove_file(self.dir.join(&victim.name));
        Ok(true)
    }
}

/// Streams records into checksummed binary segments (see [`crate::binfmt`])
/// with background compaction and budgeted retention. A drop-in
/// [`RecordStore`]: the retry/fault decorators, the seal pipeline, and the
/// fleet's per-job sharding compose with it unchanged.
pub struct BinaryStore {
    shared: Arc<StoreShared>,
    writer: BufWriter<File>,
    active_path: PathBuf,
    active_index: u64,
    active_bytes: u64,
    active_steps: u64,
    active_windows: u64,
    steps_written: u64,
    windows_written: u64,
    /// Reusable encode scratch, so the hot path allocates nothing.
    payload: Vec<u8>,
    frame: Vec<u8>,
    /// Frame-bytes counter, bound lazily for the same reason as
    /// [`SharedState::obs`]: the fleet rebinds via `use_registry` right
    /// after construction, and the global registry must not gain the
    /// series in the meantime.
    bytes_written: Option<Counter>,
}

impl std::fmt::Debug for BinaryStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinaryStore")
            .field("dir", &self.shared.dir)
            .field("active_index", &self.active_index)
            .field("steps_written", &self.steps_written)
            .field("windows_written", &self.windows_written)
            .finish()
    }
}

impl BinaryStore {
    /// Creates (or resets) a binary record directory with default tuning.
    ///
    /// # Errors
    ///
    /// Returns an error if `dir` cannot be created or the first segment
    /// cannot be opened.
    pub fn create(dir: &Path) -> io::Result<Self> {
        Self::with_config(dir, BinaryStoreConfig::default())
    }

    /// Creates (or resets) a binary record directory.
    ///
    /// # Errors
    ///
    /// Returns an error if `dir` cannot be created or the first segment
    /// cannot be opened.
    pub fn with_config(dir: &Path, config: BinaryStoreConfig) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        // Clear every artifact of a previous run, in either format, so
        // loaders and format auto-detection never mix streams.
        remove_segment_files(dir);
        for name in [STEPS_FILE, WINDOWS_FILE, MANIFEST_FILE] {
            let _ = std::fs::remove_file(dir.join(name));
            let _ = std::fs::remove_file(part_path(dir, name));
        }
        let manifest = StoreManifest {
            format: FORMAT_BINARY.to_owned(),
            ..StoreManifest::default()
        };
        let shared = Arc::new(StoreShared {
            dir: dir.to_owned(),
            config,
            state: Mutex::new(SharedState {
                manifest,
                next_segment: 1,
                maintenance: MaintenanceState::Idle,
                obs: None,
            }),
            idle: Condvar::new(),
        });
        let active_path = dir.join(format!("{SEGMENT_PREFIX}000000{PART_EXT}"));
        let mut writer = BufWriter::new(File::create(&active_path)?);
        writer.write_all(&binfmt::segment_header())?;
        let store = BinaryStore {
            shared,
            writer,
            active_path,
            active_index: 0,
            active_bytes: SEGMENT_HEADER_LEN as u64,
            active_steps: 0,
            active_windows: 0,
            steps_written: 0,
            windows_written: 0,
            payload: Vec::with_capacity(256),
            frame: Vec::with_capacity(256),
            bytes_written: None,
        };
        {
            let state = store.shared.state.lock().expect("store state");
            store.shared.write_manifest(&state.manifest)?;
        }
        Ok(store)
    }

    /// The directory records are written to.
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    fn put_frame(&mut self, kind: u8) -> io::Result<()> {
        self.frame.clear();
        binfmt::append_frame(kind, &self.payload, &mut self.frame);
        self.writer.write_all(&self.frame)?;
        self.active_bytes += self.frame.len() as u64;
        self.bytes_written
            .get_or_insert_with(|| tpupoint_obs::metrics().counter("store.bytes_written"))
            .add(self.frame.len() as u64);
        if self.active_bytes >= self.shared.config.segment_bytes {
            self.rotate(true)?;
        }
        Ok(())
    }

    /// Seals the active segment: flush, commit it to the manifest's
    /// segment list, then rename `.part` → `.bin`. Rotation is also an
    /// acknowledgement point — everything in a sealed segment is durable.
    ///
    /// The manifest commit deliberately comes *before* the rename: a
    /// crash between the two leaves a manifest-listed segment still under
    /// its part name, which recovery reads in its place. The reverse
    /// order would leave a renamed-but-unnamed segment full of
    /// acknowledged records that the orphan rule (unnamed `.bin` files
    /// are uncommitted compaction outputs) deliberately ignores.
    fn rotate(&mut self, open_next: bool) -> io::Result<()> {
        self.writer.flush()?;
        let sealed_name = segment_name(self.active_index);
        let meta = SegmentMeta {
            name: sealed_name.clone(),
            steps: self.active_steps,
            windows: self.active_windows,
            bytes: self.active_bytes,
        };
        {
            let mut state = self.shared.state.lock().expect("store state");
            state.manifest.segments.push(meta);
            state.manifest.steps_flushed = self.steps_written;
            state.manifest.windows_flushed = self.windows_written;
            self.shared.write_manifest(&state.manifest)?;
            let segments = state.manifest.segments.len() as f64;
            state.obs().segments.set(segments);
        }
        if let Err(err) = std::fs::rename(&self.active_path, self.shared.dir.join(&sealed_name)) {
            // Roll the commit back so a store that keeps running after
            // the error never appends to a segment the manifest already
            // lists; the `.part` stays readable as the active stream.
            let mut state = self.shared.state.lock().expect("store state");
            state.manifest.segments.pop();
            let _ = self.shared.write_manifest(&state.manifest);
            let segments = state.manifest.segments.len() as f64;
            state.obs().segments.set(segments);
            return Err(err);
        }
        self.active_steps = 0;
        self.active_windows = 0;
        self.active_bytes = 0;
        if open_next {
            {
                let mut state = self.shared.state.lock().expect("store state");
                self.active_index = state.next_segment;
                state.next_segment += 1;
            }
            self.active_path = self.shared.dir.join(format!(
                "{SEGMENT_PREFIX}{:06}{PART_EXT}",
                self.active_index
            ));
            self.writer = BufWriter::new(File::create(&self.active_path)?);
            self.writer.write_all(&binfmt::segment_header())?;
            self.active_bytes = SEGMENT_HEADER_LEN as u64;
            self.shared.schedule_maintenance();
        }
        Ok(())
    }

    /// Recovers everything salvageable from a binary record directory:
    /// each manifest-listed segment's valid frame prefix (falling back to
    /// its still-present `.part` when a crash interrupted the sealing
    /// rename), plus the torn active `.part` stream of a crashed writer.
    /// Segment files the manifest does not name are ignored — they are
    /// uncommitted compaction leftovers whose records the listed inputs
    /// still hold.
    ///
    /// # Errors
    ///
    /// Returns an error when `dir` holds no recognizable record stream.
    pub fn recover(dir: &Path) -> io::Result<RecoverySummary> {
        let manifest = crate::store::JsonlStore::load_manifest(dir).unwrap_or(None);
        let mut steps = Vec::new();
        let mut windows = Vec::new();
        let mut skipped_steps = 0usize;
        let mut skipped_windows = 0usize;
        let metas: Vec<SegmentMeta> = match &manifest {
            Some(m) => m.segments.clone(),
            // No manifest survived (a crash before the very first write
            // barely counts as a stream): fall back to every sealed
            // segment in name order.
            None => {
                let mut names = list_segment_files(dir, SEGMENT_EXT)?;
                names.sort();
                names
                    .into_iter()
                    .map(|name| SegmentMeta {
                        name,
                        ..SegmentMeta::default()
                    })
                    .collect()
            }
        };
        let mut found_any = manifest.is_some();
        // Part files read in place of a listed segment, excluded from the
        // active-part scan below so their records are not counted twice.
        let mut consumed_parts: Vec<String> = Vec::new();
        for meta in &metas {
            // A listed segment may still sit under its `.part` name:
            // `rotate` commits the manifest *before* the sealing rename,
            // so a crash between the two leaves exactly this state. The
            // part file holds the full flushed segment — read it in the
            // missing `.bin`'s place instead of orphaning its records.
            let bytes = std::fs::read(dir.join(&meta.name)).or_else(|err| {
                let part_name = format!("{}{}", meta.name, crate::store::PART_SUFFIX);
                match std::fs::read(dir.join(&part_name)) {
                    Ok(bytes) => {
                        consumed_parts.push(part_name);
                        Ok(bytes)
                    }
                    Err(_) => Err(err),
                }
            });
            match bytes {
                Ok(bytes) => {
                    found_any = true;
                    let read = binfmt::read_segment(&bytes);
                    skipped_steps += meta.steps.saturating_sub(read.steps.len() as u64) as usize;
                    skipped_windows +=
                        meta.windows.saturating_sub(read.windows.len() as u64) as usize;
                    if !read.clean && meta.steps == 0 && meta.windows == 0 {
                        // Fallback metas carry no expected counts; still
                        // mark the stream torn.
                        skipped_steps += 1;
                    }
                    steps.extend(read.steps);
                    windows.extend(read.windows);
                }
                // The whole segment vanished without being retired: every
                // record it held is missing.
                Err(_) => {
                    skipped_steps += meta.steps as usize;
                    skipped_windows += meta.windows as usize;
                }
            }
        }
        let mut parts = list_segment_files(dir, PART_EXT)?;
        parts.retain(|name| !consumed_parts.contains(name));
        parts.sort();
        for name in parts {
            let Ok(bytes) = std::fs::read(dir.join(&name)) else {
                continue;
            };
            found_any = true;
            let read = binfmt::read_segment(&bytes);
            if !read.clean {
                // A torn tail; attribute it to the stream of the frame
                // it tore in when the kind byte survived.
                if read.torn_kind == Some(KIND_WINDOW) {
                    skipped_windows += 1;
                } else {
                    skipped_steps += 1;
                }
            }
            steps.extend(read.steps);
            windows.extend(read.windows);
        }
        if !found_any {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "no binary record stream (seg-*.bin) under {}",
                    dir.display()
                ),
            ));
        }
        let sealed_files = manifest.as_ref().is_some_and(|m| m.sealed);
        let mut summary = RecoverySummary {
            steps,
            windows,
            skipped_step_lines: skipped_steps,
            skipped_window_lines: skipped_windows,
            manifest,
            sealed_files,
        };
        summary.steps.sort_by_key(|r| r.step);
        summary.windows.sort_by_key(|w| w.index);
        Ok(summary)
    }
}

impl RecordStore for BinaryStore {
    fn put_step(&mut self, record: &StepRecord) -> io::Result<()> {
        self.payload.clear();
        binfmt::encode_step(record, &mut self.payload);
        self.steps_written += 1;
        self.active_steps += 1;
        self.put_frame(KIND_STEP)
    }

    fn put_window(&mut self, record: &WindowRecord) -> io::Result<()> {
        self.payload.clear();
        binfmt::encode_window(record, &mut self.payload);
        self.windows_written += 1;
        self.active_windows += 1;
        self.put_frame(KIND_WINDOW)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        let mut state = self.shared.state.lock().expect("store state");
        state.manifest.steps_flushed = self.steps_written;
        state.manifest.windows_flushed = self.windows_written;
        self.shared.write_manifest(&state.manifest)
    }

    fn seal(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        if self.active_steps + self.active_windows > 0 {
            self.rotate(false)?;
        } else {
            let _ = std::fs::remove_file(&self.active_path);
        }
        // One final synchronous maintenance pass, after any background
        // one drains, so a cleanly sealed directory is also compacted and
        // within budget.
        self.shared.claim_maintenance();
        self.shared.maintain_and_release();
        let mut state = self.shared.state.lock().expect("store state");
        state.manifest.steps_flushed = self.steps_written;
        state.manifest.windows_flushed = self.windows_written;
        state.manifest.sealed = true;
        self.shared.write_manifest(&state.manifest)
    }

    fn set_meta(&mut self, model: &str, dataset: &str) {
        let mut state = self.shared.state.lock().expect("store state");
        state.manifest.model = model.to_owned();
        state.manifest.dataset = dataset.to_owned();
        // Best-effort, like the JSONL store: a failure recurs (and is
        // counted) at the next flush.
        let _ = self.shared.write_manifest(&state.manifest);
    }

    fn set_catalog(&mut self, names: &[String], uses_mxu: &[bool], on_host: &[bool]) {
        let mut state = self.shared.state.lock().expect("store state");
        state.manifest.op_names = names.to_vec();
        state.manifest.op_uses_mxu = uses_mxu.to_vec();
        state.manifest.op_on_host = on_host.to_vec();
        let _ = self.shared.write_manifest(&state.manifest);
    }

    fn use_registry(&mut self, metrics: &tpupoint_obs::Metrics) {
        self.bytes_written = Some(metrics.counter("store.bytes_written"));
        let mut state = self.shared.state.lock().expect("store state");
        let segments = state.manifest.segments.len() as f64;
        let obs = state.obs.insert(StoreObs::in_registry(metrics));
        obs.segments.set(segments);
    }
}

fn segment_name(id: u64) -> String {
    format!("{SEGMENT_PREFIX}{id:06}{SEGMENT_EXT}")
}

fn list_segment_files(dir: &Path, ext: &str) -> io::Result<Vec<String>> {
    let mut names = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(SEGMENT_PREFIX) && name.ends_with(ext) {
            // `.bin` must not also match `.bin.part`/`.bin.tmp`.
            if ext == SEGMENT_EXT && (name.ends_with(PART_EXT) || name.ends_with(TMP_EXT)) {
                continue;
            }
            names.push(name.to_owned());
        }
    }
    Ok(names)
}

/// True when `dir` holds binary segment files (sealed or in-progress).
pub(crate) fn has_segment_files(dir: &Path) -> bool {
    list_segment_files(dir, SEGMENT_EXT)
        .map(|v| !v.is_empty())
        .unwrap_or(false)
        || list_segment_files(dir, PART_EXT)
            .map(|v| !v.is_empty())
            .unwrap_or(false)
}

/// Removes every binary segment artifact (`seg-*.bin`, `.part`, `.tmp`)
/// under `dir`; used when (re)creating a store in either format.
pub(crate) fn remove_segment_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(SEGMENT_PREFIX)
            && (name.ends_with(SEGMENT_EXT) || name.ends_with(PART_EXT) || name.ends_with(TMP_EXT))
        {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::JsonlStore;
    use tpupoint_simcore::{OpId, SimDuration, SimTime, Track};

    fn sample_step(step: u64) -> StepRecord {
        let mut r = StepRecord::new(step);
        r.absorb(
            OpId(1),
            Track::TpuCore(0),
            SimTime::from_micros(10 + step),
            SimDuration::from_micros(5),
            SimDuration::from_micros(2),
        );
        r
    }

    fn sample_window(index: u64) -> WindowRecord {
        WindowRecord {
            index,
            start: SimTime::from_micros(index * 100),
            end: SimTime::from_micros(index * 100 + 90),
            events: 3,
            tpu_busy: SimDuration::from_micros(40),
            mxu_busy: SimDuration::from_micros(10),
            first_step: index,
            last_step: index + 1,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tpupoint-segstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_config() -> BinaryStoreConfig {
        BinaryStoreConfig {
            segment_bytes: 200,
            compact_segments: usize::MAX,
            retention_bytes: 0,
            background: false,
            crash_point: None,
        }
    }

    fn write_run(store: &mut BinaryStore, steps: u64, windows: u64) {
        for step in 0..steps {
            store.put_step(&sample_step(step)).unwrap();
        }
        for index in 0..windows {
            store.put_window(&sample_window(index)).unwrap();
        }
    }

    #[test]
    fn round_trips_after_seal_across_rotations() {
        let dir = tmp_dir("roundtrip");
        let mut store = BinaryStore::with_config(&dir, tiny_config()).unwrap();
        store.set_meta("demo-mlp", "synthetic");
        write_run(&mut store, 40, 6);
        store.seal().unwrap();
        drop(store);

        assert!(!has_part_files(&dir), "no .part after seal");
        let summary = BinaryStore::recover(&dir).unwrap();
        assert_eq!(summary.steps.len(), 40);
        assert_eq!(summary.windows.len(), 6);
        assert_eq!(summary.steps[7], sample_step(7));
        assert_eq!(summary.windows[3], sample_window(3));
        assert_eq!(summary.missing_acknowledged(), (0, 0));
        assert!(!summary.is_torn());
        assert!(summary.sealed_files);
        let manifest = summary.manifest.unwrap();
        assert!(manifest.sealed);
        assert_eq!(manifest.model, "demo-mlp");
        assert_eq!(manifest.format, FORMAT_BINARY);
        assert!(manifest.segments.len() > 1, "tiny segments must rotate");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn has_part_files(dir: &Path) -> bool {
        !list_segment_files(dir, PART_EXT).unwrap().is_empty()
    }

    #[test]
    fn crashed_writer_recovers_acknowledged_prefix() {
        let dir = tmp_dir("crash");
        let mut store = BinaryStore::with_config(&dir, tiny_config()).unwrap();
        write_run(&mut store, 10, 2);
        store.flush().unwrap();
        // More records the store never acknowledged, then a kill -9.
        store.put_step(&sample_step(10)).unwrap();
        std::mem::forget(store);

        let summary = BinaryStore::recover(&dir).unwrap();
        assert!(summary.steps.len() >= 10, "every acknowledged step");
        assert_eq!(summary.windows.len(), 2);
        assert_eq!(summary.missing_acknowledged(), (0, 0));
        assert!(!summary.sealed_files);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_in_active_part_recovers_prefix() {
        let dir = tmp_dir("torn");
        let mut store = BinaryStore::with_config(
            &dir,
            BinaryStoreConfig {
                segment_bytes: u64::MAX,
                ..tiny_config()
            },
        )
        .unwrap();
        write_run(&mut store, 5, 0);
        store.flush().unwrap();
        let part = dir.join(format!("{SEGMENT_PREFIX}000000{PART_EXT}"));
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&part)
            .unwrap();
        f.write_all(&[KIND_STEP, 200, 0]).unwrap(); // half a frame header
        drop(store);

        let summary = BinaryStore::recover(&dir).unwrap();
        assert_eq!(summary.steps.len(), 5);
        assert_eq!(summary.skipped_step_lines, 1);
        assert!(summary.is_torn());
        assert_eq!(summary.missing_acknowledged(), (0, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_merges_segments_and_preserves_records() {
        let dir = tmp_dir("compact");
        let metrics = tpupoint_obs::Metrics::new();
        let mut store = BinaryStore::with_config(
            &dir,
            BinaryStoreConfig {
                compact_segments: 3,
                ..tiny_config()
            },
        )
        .unwrap();
        store.use_registry(&metrics);
        write_run(&mut store, 60, 8);
        store.seal().unwrap();
        drop(store);

        let summary = BinaryStore::recover(&dir).unwrap();
        assert_eq!(summary.steps.len(), 60);
        assert_eq!(summary.windows.len(), 8);
        assert_eq!(summary.missing_acknowledged(), (0, 0));
        let manifest = summary.manifest.unwrap();
        assert!(
            manifest.segments.len() < 3,
            "seal-time compaction must leave fewer than threshold segments, got {}",
            manifest.segments.len()
        );
        let snapshot = metrics.snapshot();
        assert!(
            snapshot
                .counters
                .get("store.compactions")
                .copied()
                .unwrap_or(0)
                >= 1
        );
        // No stray files: exactly the manifest's segments remain.
        let on_disk = list_segment_files(&dir, SEGMENT_EXT).unwrap();
        assert_eq!(on_disk.len(), manifest.segments.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_retires_with_accounting_never_losing_records() {
        let dir = tmp_dir("retention");
        let metrics = tpupoint_obs::Metrics::new();
        let mut store = BinaryStore::with_config(
            &dir,
            BinaryStoreConfig {
                retention_bytes: 600,
                ..tiny_config()
            },
        )
        .unwrap();
        store.use_registry(&metrics);
        write_run(&mut store, 80, 0);
        store.seal().unwrap();
        drop(store);

        let summary = BinaryStore::recover(&dir).unwrap();
        let manifest = summary.manifest.clone().unwrap();
        assert!(manifest.steps_retired > 0, "budget must have retired");
        assert_eq!(
            summary.steps.len() as u64 + manifest.steps_retired,
            80,
            "retired + recovered covers every record"
        );
        // Retired drops are accounted: nothing counts as *lost*.
        assert_eq!(summary.missing_acknowledged(), (0, 0));
        // The survivors are the most recent suffix.
        let first = summary.steps.first().unwrap().step;
        assert_eq!(first, manifest.steps_retired);
        let total: u64 = manifest.segments.iter().map(|m| m.bytes).sum();
        assert!(total <= 600, "budget enforced, {total} bytes remain");
        let snapshot = metrics.snapshot();
        assert!(
            snapshot
                .counters
                .get("store.bytes_reclaimed")
                .copied()
                .unwrap_or(0)
                > 0
        );
        assert!(
            snapshot
                .counters
                .get("store.records_retired")
                .copied()
                .unwrap_or(0)
                > 0
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_kill_points_leave_pre_or_post_state() {
        for point in [
            CompactCrashPoint::BeforeRename,
            CompactCrashPoint::BeforeManifest,
            CompactCrashPoint::AfterManifest,
        ] {
            let dir = tmp_dir(&format!("killpoint-{point:?}"));
            let mut store = BinaryStore::with_config(
                &dir,
                BinaryStoreConfig {
                    compact_segments: 3,
                    crash_point: Some(point),
                    ..tiny_config()
                },
            )
            .unwrap();
            // Enough to rotate past the compaction threshold; the crash
            // fires inside the maintenance pass that rotation schedules.
            write_run(&mut store, 60, 8);
            store.flush().unwrap();
            std::mem::forget(store); // kill -9: no seal, no cleanup

            let summary = BinaryStore::recover(&dir).unwrap();
            assert_eq!(
                summary.missing_acknowledged(),
                (0, 0),
                "{point:?}: every acknowledged record must survive the crash"
            );
            assert!(summary.steps.len() >= 60, "{point:?}");
            assert_eq!(summary.windows.len(), 8, "{point:?}");
            let steps: Vec<u64> = summary.steps.iter().map(|r| r.step).collect();
            assert_eq!(
                steps,
                (0..steps.len() as u64).collect::<Vec<_>>(),
                "{point:?}: no duplicated or reordered records from a mixed state"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn seal_steals_a_queued_maintenance_pass_instead_of_waiting() {
        // Regression for a pipelined-seal deadlock: a background pass
        // scheduled by rotation could sit in the pool FIFO behind the
        // drain task that runs seal(); waiting for it on the condvar
        // blocked the only worker that could ever run it. Seal must
        // instead steal the queued pass and run it inline.
        let dir = tmp_dir("steal");
        let metrics = tpupoint_obs::Metrics::new();
        let mut store = BinaryStore::with_config(
            &dir,
            BinaryStoreConfig {
                compact_segments: 3,
                ..tiny_config()
            },
        )
        .unwrap();
        store.use_registry(&metrics);
        write_run(&mut store, 60, 0);
        // Reconstruct the deadlock state: a pass marked Queued whose pool
        // job has not (and in the deadlock, never could have) started.
        store.shared.state.lock().unwrap().maintenance = MaintenanceState::Queued;
        store.seal().unwrap(); // would hang forever without the steal
        let compactions_after_seal = metrics
            .snapshot()
            .counters
            .get("store.compactions")
            .copied()
            .unwrap_or(0);
        assert!(compactions_after_seal >= 1, "stolen pass ran inline");
        // The stale pool job eventually fires and must no-op: the slot it
        // was queued for is gone.
        store.shared.run_queued();
        assert_eq!(
            metrics
                .snapshot()
                .counters
                .get("store.compactions")
                .copied()
                .unwrap_or(0),
            compactions_after_seal,
            "a stolen pass must not run twice"
        );
        assert_eq!(
            store.shared.state.lock().unwrap().maintenance,
            MaintenanceState::Idle
        );
        let summary = BinaryStore::recover(&dir).unwrap();
        assert_eq!(summary.steps.len(), 60);
        assert_eq!(summary.missing_acknowledged(), (0, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn listed_segment_still_under_part_name_recovers_without_loss() {
        // The crash window inside rotate(): manifest committed, sealing
        // rename not yet executed. The listed segment is still a `.part`
        // on disk; recovery must read it in place — and only once.
        let dir = tmp_dir("rotate-window");
        let mut store = BinaryStore::with_config(&dir, tiny_config()).unwrap();
        write_run(&mut store, 40, 0);
        store.flush().unwrap();
        std::mem::forget(store); // kill -9
        let manifest = JsonlStore::load_manifest(&dir).unwrap().unwrap();
        let last = manifest.segments.last().unwrap();
        assert!(last.steps > 0, "the reverted segment holds flushed records");
        std::fs::rename(
            dir.join(&last.name),
            dir.join(format!("{}.part", last.name)),
        )
        .unwrap();

        let summary = BinaryStore::recover(&dir).unwrap();
        assert_eq!(
            summary.missing_acknowledged(),
            (0, 0),
            "acknowledged records in the un-renamed segment must survive"
        );
        let steps: Vec<u64> = summary.steps.iter().map(|r| r.step).collect();
        assert_eq!(
            steps,
            (0..40).collect::<Vec<_>>(),
            "the fallback part read must not duplicate into the part scan"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn construction_registers_no_series_before_registry_rebind() {
        let dir = tmp_dir("lazy-obs");
        let mut store = BinaryStore::with_config(&dir, tiny_config()).unwrap();
        // Creating a handle is the only way a series reaches a registry,
        // so no handle may exist yet: a fleet job rebinds right after
        // construction, and the global registry must not gain a spurious
        // `store.segments` sentinel (or zeroed counters) in the meantime.
        assert!(store.shared.state.lock().unwrap().obs.is_none());
        assert!(store.bytes_written.is_none());
        let metrics = tpupoint_obs::Metrics::new();
        store.use_registry(&metrics);
        write_run(&mut store, 10, 1);
        store.seal().unwrap();
        let snapshot = metrics.snapshot();
        assert!(snapshot.gauges.contains_key("store.segments"));
        assert!(
            snapshot
                .counters
                .get("store.bytes_written")
                .copied()
                .unwrap_or(0)
                > 0
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_ignores_uncommitted_orphan_segments() {
        let dir = tmp_dir("orphan");
        let mut store = BinaryStore::with_config(&dir, tiny_config()).unwrap();
        write_run(&mut store, 20, 0);
        store.seal().unwrap();
        drop(store);
        // A compaction output that crashed before its manifest commit.
        let mut orphan = binfmt::segment_header().to_vec();
        let mut payload = Vec::new();
        binfmt::encode_step(&sample_step(999), &mut payload);
        binfmt::append_frame(KIND_STEP, &payload, &mut orphan);
        std::fs::write(dir.join("seg-000099.bin"), orphan).unwrap();

        let summary = BinaryStore::recover(&dir).unwrap();
        assert_eq!(summary.steps.len(), 20, "orphan must not leak through");
        assert!(summary.steps.iter().all(|r| r.step != 999));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn format_autodetect_routes_both_formats() {
        let dir_b = tmp_dir("detect-bin");
        let mut store = BinaryStore::with_config(&dir_b, tiny_config()).unwrap();
        write_run(&mut store, 4, 1);
        store.seal().unwrap();
        drop(store);
        let summary = crate::store::recover_records(&dir_b).unwrap();
        assert_eq!(summary.steps.len(), 4);

        let dir_j = tmp_dir("detect-jsonl");
        let mut store = JsonlStore::create(&dir_j).unwrap();
        store.put_step(&sample_step(1)).unwrap();
        store.seal().unwrap();
        drop(store);
        let summary = crate::store::recover_records(&dir_j).unwrap();
        assert_eq!(summary.steps.len(), 1);

        std::fs::remove_dir_all(&dir_b).unwrap();
        std::fs::remove_dir_all(&dir_j).unwrap();
    }

    #[test]
    fn creating_either_store_clears_the_other_format() {
        let dir = tmp_dir("switch");
        let mut store = BinaryStore::with_config(&dir, tiny_config()).unwrap();
        write_run(&mut store, 30, 0);
        store.seal().unwrap();
        drop(store);
        // Re-record the same directory as JSONL: segments must vanish.
        let mut store = JsonlStore::create(&dir).unwrap();
        store.put_step(&sample_step(1)).unwrap();
        store.seal().unwrap();
        drop(store);
        assert!(!has_segment_files(&dir));
        let summary = crate::store::recover_records(&dir).unwrap();
        assert_eq!(summary.steps.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
