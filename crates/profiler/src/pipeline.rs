//! Off-critical-path sealing: [`SealPipeline`] sits between the profiler
//! sink and its [`RecordStore`], queueing every store operation and
//! draining the queue on `tpupoint-par` workers so record encoding and
//! storage writes happen off the simulation thread.
//!
//! The paper's profiler runs as a background thread precisely so that
//! collection does not perturb the training being measured; this module is
//! that design. Three invariants make the pipelined path a drop-in for the
//! serial one:
//!
//! 1. **FIFO store order.** At most one drain task runs at a time, and it
//!    applies queued operations in submission order, so the store decorator
//!    chain (retry/fault/JSONL) observes the *identical* call sequence as
//!    the serial path — sealed output is byte-identical and seeded fault
//!    scenarios replay exactly.
//! 2. **Bounded queue.** [`PipelineConfig::high_water`] caps in-flight
//!    operations; a producer hitting the cap blocks until the drainer
//!    catches up (counted by `profiler.seal_backpressure_waits`), so a slow
//!    store cannot buffer unbounded memory.
//! 3. **Drain barrier.** [`SealPipeline::wait_idle`] returns only when the
//!    queue is empty and no drain task is running, so a finished profile
//!    reflects every store result, exactly like the serial path.
//!
//! On a pool of one participant there are no worker threads; the pipeline
//! degrades to applying each operation inline on the caller, which *is*
//! the serial path.
//!
//! Observability: gauge `profiler.seal_queue_depth`, histogram
//! `profiler.seal_latency_us` (real wall time per drained operation),
//! counter `profiler.seal_backpressure_waits`, and the drain task's
//! `span.profiler.seal_drain` spans appearing in each worker's trace lane.

use crate::record::StepRecord;
use crate::store::RecordStore;
use crate::window::WindowRecord;
use std::collections::VecDeque;
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning of the [`SealPipeline`] queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Backpressure threshold: submissions block while the queue holds
    /// this many operations.
    pub high_water: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { high_water: 256 }
    }
}

/// One queued store operation.
enum SealTask {
    Window(WindowRecord),
    Step(StepRecord),
    Meta(String, String),
    Catalog {
        names: Vec<String>,
        uses_mxu: Vec<bool>,
        on_host: Vec<bool>,
    },
    Flush,
    Seal,
}

impl SealTask {
    /// The label store errors are reported under; matches the serial
    /// sink's accounting strings so profiles compare equal.
    fn what(&self) -> &'static str {
        match self {
            SealTask::Window(_) => "put_window",
            SealTask::Step(_) => "put_step",
            SealTask::Meta(..) => "set_meta",
            SealTask::Catalog { .. } => "set_catalog",
            SealTask::Flush => "flush",
            SealTask::Seal => "seal",
        }
    }
}

fn apply(store: &mut Box<dyn RecordStore + Send>, task: SealTask) -> io::Result<()> {
    match task {
        SealTask::Window(window) => store.put_window(&window),
        SealTask::Step(step) => store.put_step(&step),
        SealTask::Meta(model, dataset) => {
            store.set_meta(&model, &dataset);
            Ok(())
        }
        SealTask::Catalog {
            names,
            uses_mxu,
            on_host,
        } => {
            store.set_catalog(&names, &uses_mxu, &on_host);
            Ok(())
        }
        SealTask::Flush => store.flush(),
        SealTask::Seal => store.seal(),
    }
}

struct PipelineState {
    queue: VecDeque<SealTask>,
    /// Checked out (None) only while the single active drain task applies
    /// an operation outside the lock.
    store: Option<Box<dyn RecordStore + Send>>,
    /// True while a drain task is scheduled or running; at most one at a
    /// time, which is what makes store-operation order FIFO.
    draining: bool,
    /// Set by [`SealPipeline::simulate_crash`]: drop everything in flight
    /// and leak the store, like a `kill -9`.
    killed: bool,
    /// Store failures in operation order, replayed into the sink's
    /// accounting at the drain barrier.
    errors: Vec<(&'static str, io::Error)>,
    ops_done: u64,
}

struct PipelineShared {
    state: Mutex<PipelineState>,
    /// Signals producers blocked on the high-water mark.
    space: Condvar,
    /// Signals the drain barrier (queue empty, drainer exited).
    idle: Condvar,
    high_water: usize,
    depth: tpupoint_obs::Gauge,
    latency_us: Arc<tpupoint_obs::Histogram>,
    backpressure: tpupoint_obs::Counter,
}

impl PipelineShared {
    fn drain(self: &Arc<Self>) {
        let _span = tpupoint_obs::span!("profiler.seal_drain");
        let mut state = self.state.lock().expect("pipeline");
        loop {
            if state.killed {
                break;
            }
            let Some(task) = state.queue.pop_front() else {
                break;
            };
            self.depth.set(state.queue.len() as f64);
            self.space.notify_all();
            let mut store = state
                .store
                .take()
                .expect("store is checked out by the single active drainer only");
            drop(state);
            let what = task.what();
            let started = Instant::now();
            let result = apply(&mut store, task);
            self.latency_us
                .record(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
            state = self.state.lock().expect("pipeline");
            if state.killed {
                // Crashed while this operation was in flight: the store
                // must not come back (its Drop would flush, which a real
                // kill -9 never does).
                std::mem::forget(store);
                break;
            }
            state.store = Some(store);
            state.ops_done += 1;
            if let Err(err) = result {
                state.errors.push((what, err));
            }
        }
        state.draining = false;
        drop(state);
        self.idle.notify_all();
        self.space.notify_all();
    }
}

/// The bounded sealing queue; see the module docs.
pub struct SealPipeline {
    shared: Arc<PipelineShared>,
    pool: Arc<tpupoint_par::ThreadPool>,
    /// Pool of one: no workers exist, apply operations on the caller.
    inline: bool,
}

impl std::fmt::Debug for SealPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SealPipeline")
            .field("inline", &self.inline)
            .field("depth", &self.depth())
            .finish_non_exhaustive()
    }
}

impl SealPipeline {
    /// Builds a pipeline over `store`, draining on the process-wide pool.
    pub fn new(store: Box<dyn RecordStore + Send>, config: PipelineConfig) -> Self {
        Self::on_pool(store, config, tpupoint_par::pool())
    }

    /// Builds a pipeline draining on an explicit pool (tests pin sizes).
    pub fn on_pool(
        store: Box<dyn RecordStore + Send>,
        config: PipelineConfig,
        pool: Arc<tpupoint_par::ThreadPool>,
    ) -> Self {
        let metrics = tpupoint_obs::metrics();
        let inline = pool.size() <= 1;
        SealPipeline {
            shared: Arc::new(PipelineShared {
                state: Mutex::new(PipelineState {
                    queue: VecDeque::new(),
                    store: Some(store),
                    draining: false,
                    killed: false,
                    errors: Vec::new(),
                    ops_done: 0,
                }),
                space: Condvar::new(),
                idle: Condvar::new(),
                high_water: config.high_water.max(1),
                depth: metrics.gauge("profiler.seal_queue_depth"),
                latency_us: metrics.histogram("profiler.seal_latency_us"),
                backpressure: metrics.counter("profiler.seal_backpressure_waits"),
            }),
            pool,
            inline,
        }
    }

    /// Redirects the pipeline's queue-depth/latency/backpressure series
    /// into `metrics`. Only effective before the first drain task is
    /// scheduled (while this handle holds the only reference to the
    /// shared state); afterwards the existing handles stay bound, which
    /// is safe — just attributed to the old registry. The wrapped store's
    /// own series rebind unconditionally.
    pub fn use_registry(&mut self, metrics: &tpupoint_obs::Metrics) {
        if let Some(shared) = Arc::get_mut(&mut self.shared) {
            shared.depth = metrics.gauge("profiler.seal_queue_depth");
            shared.latency_us = metrics.histogram("profiler.seal_latency_us");
            shared.backpressure = metrics.counter("profiler.seal_backpressure_waits");
        }
        let mut state = self.shared.state.lock().expect("pipeline");
        if let Some(store) = state.store.as_mut() {
            store.use_registry(metrics);
        }
    }

    /// Queued operations not yet applied.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().expect("pipeline").queue.len()
    }

    /// Operations applied to the store so far.
    pub fn ops_done(&self) -> u64 {
        self.shared.state.lock().expect("pipeline").ops_done
    }

    /// Enqueues one window record.
    pub fn put_window(&self, record: &WindowRecord) {
        self.submit(SealTask::Window(record.clone()));
    }

    /// Enqueues one step record.
    pub fn put_step(&self, record: &StepRecord) {
        self.submit(SealTask::Step(record.clone()));
    }

    /// Enqueues the stream's model/dataset label.
    pub fn set_meta(&self, model: &str, dataset: &str) {
        self.submit(SealTask::Meta(model.to_owned(), dataset.to_owned()));
    }

    /// Enqueues the op-name catalog.
    pub fn set_catalog(&self, names: Vec<String>, uses_mxu: Vec<bool>, on_host: Vec<bool>) {
        self.submit(SealTask::Catalog {
            names,
            uses_mxu,
            on_host,
        });
    }

    /// Enqueues a flush (the store's acknowledgement watermark advances
    /// when the drainer applies it).
    pub fn flush(&self) {
        self.submit(SealTask::Flush);
    }

    /// Enqueues the sealing rename of a clean shutdown.
    pub fn seal(&self) {
        self.submit(SealTask::Seal);
    }

    fn submit(&self, task: SealTask) {
        if self.inline {
            let mut state = self.shared.state.lock().expect("pipeline");
            if state.killed {
                return;
            }
            let what = task.what();
            let store = state
                .store
                .as_mut()
                .expect("inline store never checked out");
            let started = Instant::now();
            let result = apply(store, task);
            self.shared
                .latency_us
                .record(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
            state.ops_done += 1;
            if let Err(err) = result {
                state.errors.push((what, err));
            }
            return;
        }
        let mut state = self.shared.state.lock().expect("pipeline");
        while state.queue.len() >= self.shared.high_water && !state.killed {
            // Backpressure: the simulation thread waits for the drainer
            // instead of buffering without bound.
            self.shared.backpressure.inc();
            self.ensure_drainer(&mut state);
            state = self.shared.space.wait(state).expect("pipeline");
        }
        if state.killed {
            return;
        }
        state.queue.push_back(task);
        self.shared.depth.set(state.queue.len() as f64);
        self.ensure_drainer(&mut state);
    }

    /// Schedules a drain task on the pool unless one is already active.
    /// Drain tasks are finite (they exit once the queue momentarily runs
    /// dry) so a scope-helping thread that happens to pick one up is never
    /// trapped in an endless loop.
    fn ensure_drainer(&self, state: &mut PipelineState) {
        if state.draining || state.killed || state.queue.is_empty() {
            return;
        }
        state.draining = true;
        let shared = Arc::clone(&self.shared);
        self.pool.spawn_detached(move || shared.drain());
    }

    /// The drain barrier: blocks until every queued operation has been
    /// applied and the drainer has exited (or the pipeline was crashed).
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock().expect("pipeline");
        loop {
            if state.killed || (state.queue.is_empty() && !state.draining) {
                return;
            }
            // Re-arm in case a drainer exited between submissions.
            self.ensure_drainer(&mut state);
            let (next, _) = self
                .shared
                .idle
                .wait_timeout(state, Duration::from_millis(50))
                .expect("pipeline");
            state = next;
        }
    }

    /// Takes the store failures recorded so far, in operation order.
    pub fn take_errors(&self) -> Vec<(&'static str, io::Error)> {
        std::mem::take(&mut self.shared.state.lock().expect("pipeline").errors)
    }

    /// Waits for the drainer, then hands the store back (None after a
    /// simulated crash).
    pub fn into_store(self) -> Option<Box<dyn RecordStore + Send>> {
        self.wait_idle();
        self.shared.state.lock().expect("pipeline").store.take()
    }

    /// Fault-injection hook for crash tests: simulates a `kill -9` of the
    /// recording side. Every queued operation is dropped on the floor and
    /// the store is leaked, so nothing is flushed, sealed, or dropped —
    /// exactly the state a dead process leaves behind. An operation
    /// already in flight on a worker may or may not complete its write,
    /// like a real crash landing mid-I/O.
    pub fn simulate_crash(&self) {
        let mut state = self.shared.state.lock().expect("pipeline");
        state.killed = true;
        state.queue.clear();
        self.shared.depth.set(0.0);
        if let Some(store) = state.store.take() {
            std::mem::forget(store);
        }
        drop(state);
        self.shared.space.notify_all();
        self.shared.idle.notify_all();
    }
}
