//! # tpupoint-profiler
//!
//! TPUPoint-Profiler (Section III of the paper): converts the raw event
//! stream of a (simulated) Cloud TPU training session into *statistical
//! profile records* — per-step operator histograms plus per-window TPU idle
//! time and MXU utilization — instead of storing every event.
//!
//! The real profiler runs a dedicated thread that periodically requests
//! profiles from the TPU; each response carries at most 1,000,000 events
//! spanning at most 60,000 ms. [`ProfilerSink`] reproduces that windowing:
//! it consumes the trace online (as a [`tpupoint_simcore::trace::TraceSink`])
//! and seals a [`window::WindowRecord`] whenever either cap is hit. Per-step
//! aggregation happens simultaneously, producing the [`record::StepRecord`]s
//! that TPUPoint-Analyzer clusters into phases.
//!
//! Records can be buffered in memory (optimizer mode) or streamed to
//! storage as JSON lines (analyzer mode) via [`store::RecordStore`].
//!
//! ```
//! use tpupoint_runtime::{JobConfig, TrainingJob};
//! use tpupoint_profiler::{ProfilerOptions, ProfilerSink};
//!
//! let job = TrainingJob::new(JobConfig::demo());
//! let mut sink = ProfilerSink::new(job.catalog().clone(), ProfilerOptions::default());
//! let report = job.run(&mut sink);
//! let profile = sink.finish();
//! assert_eq!(profile.steps.len() as u64, report.steps_completed + 2); // + init & shutdown
//! ```

pub mod audit;
pub mod binfmt;
pub mod pipeline;
pub mod profile;
pub mod record;
pub mod resilience;
pub mod segstore;
pub mod sink;
pub mod store;
pub mod window;

pub use audit::{audit_windows, WindowAudit};
pub use pipeline::{PipelineConfig, SealPipeline};
pub use profile::Profile;
pub use record::{OpStats, StepRecord};
pub use resilience::{FaultConfig, FaultStore, RetryPolicy, RetryStore, ThrottledStore};
pub use segstore::{BinaryStore, BinaryStoreConfig, CompactCrashPoint};
pub use sink::{ProfilerOptions, ProfilerSink};
pub use store::{
    recover_records, InMemoryStore, JsonlStore, RecordStore, RecoveredLoad, RecoverySummary,
    SegmentMeta, StoreFormat, StoreManifest,
};
pub use window::WindowRecord;
