//! Resilient record-store decorators.
//!
//! The paper's recording thread streams records to Cloud Storage while
//! training runs; in production that path sees transient errors, throttled
//! buckets, and whole outage windows. Two [`RecordStore`] decorators make
//! the reproduction's path degrade the same way a hardened recorder would:
//!
//! - [`RetryStore`] retries each failed operation a bounded number of
//!   times with deterministic (seeded) exponential backoff, then *spills*
//!   the record to memory instead of dropping it. Every `put` it
//!   acknowledges (returns `Ok`) is preserved — in the backing store or in
//!   the spill queue, which drains opportunistically on later calls and
//!   definitively on [`RecordStore::flush`]/[`RecordStore::seal`] — up to
//!   the spill queue's high-water mark ([`RetryPolicy::max_spill`]): a
//!   sustained outage past that point sheds the oldest spilled records,
//!   counted by `profiler.records_shed`, instead of growing host memory
//!   without bound.
//! - [`FaultStore`] injects failures in front of any store — a per-call
//!   error probability plus periodic "stuck" outage windows — from a
//!   seeded stream, so fault scenarios replay exactly.
//! - [`ThrottledStore`] adds real per-operation latency for wall-clock
//!   benchmarks of the pipelined sealing path.
//!
//! Backoff delays are always computed and recorded (histogram
//! `profiler.store_backoff_us`). In batch mode they are *not* slept: the
//! simulator has no wall clock, and tests must stay fast. Serve mode's
//! wall-clock recording thread flips [`RetryPolicy::sleep_backoff`] on,
//! and the identical seeded schedule is then actually slept — same
//! delays, now spent in real time, exactly as a production recorder
//! would.
//!
//! Observability: counters `profiler.store_errors` (failed backing-store
//! operations), `profiler.store_retries` (retry attempts),
//! `profiler.records_spilled`, and gauge `profiler.store_spill_depth`.

use crate::record::StepRecord;
use crate::store::RecordStore;
use crate::window::WindowRecord;
use std::collections::VecDeque;
use std::io;
use std::sync::Arc;
use tpupoint_obs::{Counter, Gauge, Histogram};
use tpupoint_simcore::{SimDuration, SimRng};

/// Retry/backoff schedule of a [`RetryStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries per operation after the first attempt (0 disables retry;
    /// spill still applies).
    pub max_retries: u32,
    /// Backoff before the first retry, microseconds.
    pub base_backoff_us: u64,
    /// Backoff ceiling, microseconds.
    pub max_backoff_us: u64,
    /// Seed of the backoff-jitter stream (like
    /// [`crate::ProfilerOptions`]'s `fault_seed`, a fixed seed replays the
    /// identical schedule).
    pub seed: u64,
    /// High-water mark of the spill queue. A sustained outage cannot grow
    /// host memory without bound: once the queue holds this many records,
    /// the *oldest* spilled record is shed for each new one (counted by
    /// `profiler.records_shed`), keeping the freshest tail — the records
    /// an analyzer of a partially-recorded run can least afford to lose
    /// are the recent ones that were never flushed anywhere else.
    pub max_spill: usize,
    /// When `true`, each backoff delay is actually slept
    /// (`std::thread::sleep`) in addition to being recorded. Batch runs
    /// keep this off so the deterministic suites stay fast; serve mode's
    /// wall-clock recording thread turns it on so the retry schedule is
    /// spent in real time.
    pub sleep_backoff: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_us: 1_000,
            max_backoff_us: 100_000,
            seed: 0xBAC0FF,
            max_spill: 100_000,
            sleep_backoff: false,
        }
    }
}

/// Records awaiting redelivery, in arrival order.
#[derive(Debug, Clone)]
enum Spilled {
    Step(StepRecord),
    Window(WindowRecord),
}

struct RetryMetrics {
    errors: Counter,
    retries: Counter,
    spilled: Counter,
    shed: Counter,
    spill_depth: Gauge,
    backoff_us: Arc<Histogram>,
}

impl RetryMetrics {
    fn new() -> Self {
        Self::in_registry(tpupoint_obs::metrics())
    }

    fn in_registry(metrics: &tpupoint_obs::Metrics) -> Self {
        RetryMetrics {
            errors: metrics.counter("profiler.store_errors"),
            retries: metrics.counter("profiler.store_retries"),
            spilled: metrics.counter("profiler.records_spilled"),
            shed: metrics.counter("profiler.records_shed"),
            spill_depth: metrics.gauge("profiler.store_spill_depth"),
            backoff_us: metrics.histogram("profiler.store_backoff_us"),
        }
    }
}

/// Bounded-retry + spill-to-memory decorator; see the module docs.
pub struct RetryStore<S: RecordStore> {
    inner: S,
    policy: RetryPolicy,
    rng: SimRng,
    spill: VecDeque<Spilled>,
    shed_records: u64,
    total_backoff_us: u64,
    obs: RetryMetrics,
}

impl<S: RecordStore> std::fmt::Debug for RetryStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryStore")
            .field("policy", &self.policy)
            .field("spill_depth", &self.spill.len())
            .field("total_backoff_us", &self.total_backoff_us)
            .finish()
    }
}

impl<S: RecordStore> RetryStore<S> {
    /// Wraps `inner` with the default policy.
    pub fn new(inner: S) -> Self {
        Self::with_policy(inner, RetryPolicy::default())
    }

    /// Wraps `inner` with an explicit policy.
    pub fn with_policy(inner: S, policy: RetryPolicy) -> Self {
        RetryStore {
            inner,
            policy,
            rng: SimRng::seed_from(policy.seed),
            spill: VecDeque::new(),
            shed_records: 0,
            total_backoff_us: 0,
            obs: RetryMetrics::new(),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The wrapped store, mutably (tests flip fault knobs through this).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Records currently spilled to memory, awaiting redelivery.
    pub fn spilled_pending(&self) -> usize {
        self.spill.len()
    }

    /// Records shed (oldest-first) because the spill queue hit its
    /// high-water mark during a sustained outage. Shed records were
    /// acknowledged but are gone: this count is the honest price of the
    /// bounded queue, surfaced here and as `profiler.records_shed`.
    pub fn records_shed(&self) -> u64 {
        self.shed_records
    }

    /// Cumulative (simulated) backoff delay across all retries.
    pub fn total_backoff(&self) -> SimDuration {
        SimDuration::from_micros(self.total_backoff_us)
    }

    /// Jittered exponential backoff for retry number `attempt` (0-based).
    fn backoff_us(&mut self, attempt: u32) -> u64 {
        let exp = self
            .policy
            .base_backoff_us
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.policy.max_backoff_us);
        // Full jitter in [0.5, 1.5) keeps retries from synchronizing.
        ((exp as f64) * (0.5 + self.rng.uniform_f64())) as u64
    }

    /// Runs one store operation with up to `max_retries` retries. Failed
    /// attempts that are retried count as store errors; the final failure
    /// is returned *uncounted* so the caller decides whether it absorbs
    /// the error (spill) or surfaces it (flush/seal, where the sink does
    /// the accounting).
    fn attempt<F>(&mut self, mut op: F) -> io::Result<()>
    where
        F: FnMut(&mut S) -> io::Result<()>,
    {
        let mut attempt = 0u32;
        loop {
            match op(&mut self.inner) {
                Ok(()) => return Ok(()),
                Err(err) => {
                    if attempt >= self.policy.max_retries {
                        return Err(err);
                    }
                    self.obs.errors.inc();
                    let delay = self.backoff_us(attempt);
                    self.total_backoff_us += delay;
                    self.obs.backoff_us.record(delay);
                    self.obs.retries.inc();
                    if self.policy.sleep_backoff {
                        std::thread::sleep(std::time::Duration::from_micros(delay));
                    }
                    attempt += 1;
                }
            }
        }
    }

    fn push_spill(&mut self, record: Spilled) {
        self.obs.errors.inc();
        self.obs.spilled.inc();
        if self.spill.len() >= self.policy.max_spill.max(1) {
            // High-water mark: shed the oldest record to admit the new
            // one, keeping the queue bounded through any outage length.
            self.spill.pop_front();
            self.shed_records += 1;
            self.obs.shed.inc();
        }
        self.spill.push_back(record);
        self.obs.spill_depth.set(self.spill.len() as f64);
    }

    /// Redelivers one spilled record to the inner store.
    fn redeliver(inner: &mut S, record: &Spilled) -> io::Result<()> {
        match record {
            Spilled::Step(step) => inner.put_step(step),
            Spilled::Window(window) => inner.put_window(window),
        }
    }

    /// Opportunistic drain: one delivery probe per call, so a recovered
    /// store catches up without stalling the hot path while it is down.
    fn try_drain(&mut self) {
        while let Some(front) = self.spill.front() {
            match Self::redeliver(&mut self.inner, front) {
                Ok(()) => {
                    self.spill.pop_front();
                    self.obs.spill_depth.set(self.spill.len() as f64);
                }
                Err(_) => {
                    // Still down; count the probe and come back later.
                    self.obs.errors.inc();
                    return;
                }
            }
        }
    }

    /// Full drain with retries; used by flush/seal where completeness
    /// beats latency.
    ///
    /// # Errors
    ///
    /// Returns the underlying error once retries are exhausted, with the
    /// remaining spill depth in the message.
    fn drain_with_retries(&mut self) -> io::Result<()> {
        while let Some(front) = self.spill.front().cloned() {
            match self.attempt(|inner| Self::redeliver(inner, &front)) {
                Ok(()) => {
                    self.spill.pop_front();
                    self.obs.spill_depth.set(self.spill.len() as f64);
                }
                Err(err) => {
                    return Err(io::Error::new(
                        err.kind(),
                        format!(
                            "{} spilled record(s) undeliverable: {err}",
                            self.spill.len()
                        ),
                    ));
                }
            }
        }
        Ok(())
    }
}

impl<S: RecordStore> RecordStore for RetryStore<S> {
    /// Never returns an error: a record that cannot be delivered within
    /// the retry budget is spilled to memory and acknowledged.
    fn put_step(&mut self, record: &StepRecord) -> io::Result<()> {
        self.try_drain();
        if !self.spill.is_empty() {
            // Preserve delivery order behind earlier spilled records.
            self.push_spill(Spilled::Step(record.clone()));
            return Ok(());
        }
        if self.attempt(|inner| inner.put_step(record)).is_err() {
            self.push_spill(Spilled::Step(record.clone()));
        }
        Ok(())
    }

    fn put_window(&mut self, record: &WindowRecord) -> io::Result<()> {
        self.try_drain();
        if !self.spill.is_empty() {
            self.push_spill(Spilled::Window(record.clone()));
            return Ok(());
        }
        if self.attempt(|inner| inner.put_window(record)).is_err() {
            self.push_spill(Spilled::Window(record.clone()));
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.drain_with_retries()?;
        self.attempt(|inner| inner.flush())
    }

    fn seal(&mut self) -> io::Result<()> {
        self.drain_with_retries()?;
        self.attempt(|inner| inner.seal())
    }

    fn set_meta(&mut self, model: &str, dataset: &str) {
        self.inner.set_meta(model, dataset);
    }

    fn set_catalog(&mut self, names: &[String], uses_mxu: &[bool], on_host: &[bool]) {
        self.inner.set_catalog(names, uses_mxu, on_host);
    }

    fn use_registry(&mut self, metrics: &tpupoint_obs::Metrics) {
        self.obs = RetryMetrics::in_registry(metrics);
        self.inner.use_registry(metrics);
    }
}

/// Failure schedule of a [`FaultStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Independent probability that any one store operation fails.
    pub error_probability: f64,
    /// Seed of the fault stream (a fixed seed replays the identical fault
    /// pattern, like [`crate::ProfilerOptions`]'s `fault_seed`).
    pub seed: u64,
    /// When set, the store goes completely down every `stuck_every`-th
    /// operation...
    pub stuck_every: Option<u64>,
    /// ...and stays down for this many consecutive operations (an outage
    /// window, not just independent flakes).
    pub stuck_for: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            error_probability: 0.0,
            seed: 0xFA117,
            stuck_every: None,
            stuck_for: 0,
        }
    }
}

/// Fault-injection decorator for tests and the CLI; see the module docs.
pub struct FaultStore<S: RecordStore> {
    inner: S,
    config: FaultConfig,
    rng: SimRng,
    calls: u64,
    stuck_left: u64,
    injected: u64,
}

impl<S: RecordStore> std::fmt::Debug for FaultStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultStore")
            .field("config", &self.config)
            .field("calls", &self.calls)
            .field("injected", &self.injected)
            .finish()
    }
}

impl<S: RecordStore> FaultStore<S> {
    /// Wraps `inner` with the given fault schedule.
    pub fn new(inner: S, config: FaultConfig) -> Self {
        FaultStore {
            inner,
            config,
            rng: SimRng::seed_from(config.seed),
            calls: 0,
            stuck_left: 0,
            injected: 0,
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Changes the per-call error probability mid-run (tests use this to
    /// model a backing store that recovers).
    pub fn set_error_probability(&mut self, p: f64) {
        self.config.error_probability = p;
    }

    /// Rolls the dice for one operation.
    fn maybe_fail(&mut self, op: &str) -> io::Result<()> {
        self.calls += 1;
        if let Some(every) = self.config.stuck_every {
            if every > 0 && self.calls.is_multiple_of(every) {
                self.stuck_left = self.config.stuck_for;
            }
        }
        if self.stuck_left > 0 {
            self.stuck_left -= 1;
            self.injected += 1;
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                format!(
                    "injected outage: store stuck during {op} (call {})",
                    self.calls
                ),
            ));
        }
        if self.rng.chance(self.config.error_probability) {
            self.injected += 1;
            return Err(io::Error::other(format!(
                "injected fault during {op} (call {})",
                self.calls
            )));
        }
        Ok(())
    }
}

impl<S: RecordStore> RecordStore for FaultStore<S> {
    fn put_step(&mut self, record: &StepRecord) -> io::Result<()> {
        self.maybe_fail("put_step")?;
        self.inner.put_step(record)
    }

    fn put_window(&mut self, record: &WindowRecord) -> io::Result<()> {
        self.maybe_fail("put_window")?;
        self.inner.put_window(record)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.maybe_fail("flush")?;
        self.inner.flush()
    }

    fn seal(&mut self) -> io::Result<()> {
        self.maybe_fail("seal")?;
        self.inner.seal()
    }

    fn set_meta(&mut self, model: &str, dataset: &str) {
        self.inner.set_meta(model, dataset);
    }

    // Metadata calls are not faulted (and not counted against the call
    // stream): they carry no record payload, so fault scenarios replay
    // identically whether or not the writer labels its stream.
    fn set_catalog(&mut self, names: &[String], uses_mxu: &[bool], on_host: &[bool]) {
        self.inner.set_catalog(names, uses_mxu, on_host);
    }

    fn use_registry(&mut self, metrics: &tpupoint_obs::Metrics) {
        self.inner.use_registry(metrics);
    }
}

/// Adds a fixed *real* (wall-clock) latency to every record operation,
/// modeling the Cloud Storage round-trip the paper's background recording
/// thread hides from the training loop. Unlike [`RetryStore`]'s simulated
/// backoff this decorator actually sleeps, so it belongs in wall-clock
/// benchmarks (`reproduce bench_pipeline`) and demos — not in the fast
/// deterministic test suite.
pub struct ThrottledStore<S: RecordStore> {
    inner: S,
    delay: std::time::Duration,
}

impl<S: RecordStore> std::fmt::Debug for ThrottledStore<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThrottledStore")
            .field("delay", &self.delay)
            .finish_non_exhaustive()
    }
}

impl<S: RecordStore> ThrottledStore<S> {
    /// Wraps `inner`, sleeping `delay` before each record operation.
    pub fn new(inner: S, delay: std::time::Duration) -> Self {
        ThrottledStore { inner, delay }
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: RecordStore> RecordStore for ThrottledStore<S> {
    fn put_step(&mut self, record: &StepRecord) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.put_step(record)
    }

    fn put_window(&mut self, record: &WindowRecord) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.put_window(record)
    }

    fn flush(&mut self) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.flush()
    }

    fn seal(&mut self) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.seal()
    }

    fn set_meta(&mut self, model: &str, dataset: &str) {
        self.inner.set_meta(model, dataset);
    }

    fn set_catalog(&mut self, names: &[String], uses_mxu: &[bool], on_host: &[bool]) {
        self.inner.set_catalog(names, uses_mxu, on_host);
    }

    fn use_registry(&mut self, metrics: &tpupoint_obs::Metrics) {
        self.inner.use_registry(metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::InMemoryStore;
    use tpupoint_simcore::{OpId, SimTime, Track};

    fn step(n: u64) -> StepRecord {
        let mut r = StepRecord::new(n);
        r.absorb(
            OpId(0),
            Track::Host,
            SimTime::from_micros(n),
            SimDuration::from_micros(1),
            SimDuration::ZERO,
        );
        r
    }

    /// A store that always fails.
    struct DownStore;

    impl RecordStore for DownStore {
        fn put_step(&mut self, _: &StepRecord) -> io::Result<()> {
            Err(io::Error::other("down"))
        }
        fn put_window(&mut self, _: &WindowRecord) -> io::Result<()> {
            Err(io::Error::other("down"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::other("down"))
        }
    }

    #[test]
    fn transient_faults_are_retried_through() {
        let fault = FaultStore::new(
            InMemoryStore::new(),
            FaultConfig {
                error_probability: 0.4,
                seed: 11,
                ..FaultConfig::default()
            },
        );
        let mut store = RetryStore::with_policy(
            fault,
            RetryPolicy {
                max_retries: 8,
                ..RetryPolicy::default()
            },
        );
        for n in 0..50 {
            store.put_step(&step(n)).unwrap();
        }
        store.inner_mut().set_error_probability(0.0);
        store.flush().unwrap();
        assert_eq!(store.spilled_pending(), 0);
        let delivered: Vec<u64> = store
            .inner()
            .inner()
            .steps()
            .iter()
            .map(|r| r.step)
            .collect();
        assert_eq!(delivered, (0..50).collect::<Vec<_>>(), "order preserved");
        assert!(store.inner().injected() > 0, "faults actually fired");
    }

    #[test]
    fn outage_window_spills_then_drains_in_order() {
        let fault = FaultStore::new(
            InMemoryStore::new(),
            FaultConfig {
                stuck_every: Some(10),
                stuck_for: 3,
                ..FaultConfig::default()
            },
        );
        // No retries: each put during the outage spills immediately.
        let mut store = RetryStore::with_policy(
            fault,
            RetryPolicy {
                max_retries: 0,
                ..RetryPolicy::default()
            },
        );
        // Calls 10..12 hit the outage (puts plus drain probes each count
        // as one underlying call), spilling three records.
        for n in 0..12 {
            store.put_step(&step(n)).unwrap();
        }
        assert!(store.spilled_pending() > 0, "outage forced spilling");
        store.flush().unwrap();
        assert_eq!(store.spilled_pending(), 0);
        let delivered: Vec<u64> = store
            .inner()
            .inner()
            .steps()
            .iter()
            .map(|r| r.step)
            .collect();
        assert_eq!(delivered, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn acknowledged_puts_never_error_even_when_store_is_down() {
        let mut store = RetryStore::with_policy(
            DownStore,
            RetryPolicy {
                max_retries: 2,
                ..RetryPolicy::default()
            },
        );
        for n in 0..5 {
            store.put_step(&step(n)).unwrap();
        }
        assert_eq!(store.spilled_pending(), 5);
        assert!(store.total_backoff() > SimDuration::ZERO);
        // Flush cannot deliver: the error surfaces with the spill depth.
        let err = store.flush().unwrap_err();
        assert!(
            err.to_string().contains("spilled record(s) undeliverable"),
            "{err}"
        );
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut s = RetryStore::with_policy(
                DownStore,
                RetryPolicy {
                    max_retries: 4,
                    seed,
                    ..RetryPolicy::default()
                },
            );
            s.put_step(&step(1)).unwrap();
            s.total_backoff()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut store = RetryStore::with_policy(
            DownStore,
            RetryPolicy {
                max_retries: 30,
                base_backoff_us: 1_000,
                max_backoff_us: 50_000,
                seed: 1,
                ..RetryPolicy::default()
            },
        );
        store.put_step(&step(1)).unwrap();
        // 30 retries, jitter < 1.5x: total stays under 30 * 75ms.
        assert!(store.total_backoff() < SimDuration::from_micros(30 * 75_000));
        assert!(store.total_backoff() > SimDuration::from_micros(500));
    }

    #[test]
    fn sleep_backoff_spends_the_recorded_schedule_on_the_wall_clock() {
        let mut store = RetryStore::with_policy(
            DownStore,
            RetryPolicy {
                max_retries: 2,
                base_backoff_us: 2_000,
                max_backoff_us: 10_000,
                sleep_backoff: true,
                ..RetryPolicy::default()
            },
        );
        let start = std::time::Instant::now();
        store.put_step(&step(1)).unwrap();
        let elapsed = start.elapsed();
        let recorded = store.total_backoff();
        // Two retries, jitter >= 0.5x: at least 2ms recorded, all slept.
        assert!(recorded >= SimDuration::from_micros(2_000), "{recorded:?}");
        assert!(
            elapsed >= std::time::Duration::from_micros(recorded.as_micros()),
            "recorded {recorded:?} but only {elapsed:?} elapsed"
        );
    }

    #[test]
    fn fault_stream_replays_per_seed() {
        let run = |seed| {
            let mut fault = FaultStore::new(
                InMemoryStore::new(),
                FaultConfig {
                    error_probability: 0.5,
                    seed,
                    ..FaultConfig::default()
                },
            );
            (0..40)
                .map(|n| fault.put_step(&step(n)).is_ok())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn stuck_windows_fail_consecutively() {
        let mut fault = FaultStore::new(
            InMemoryStore::new(),
            FaultConfig {
                stuck_every: Some(5),
                stuck_for: 3,
                ..FaultConfig::default()
            },
        );
        let results: Vec<bool> = (0..10).map(|n| fault.put_step(&step(n)).is_ok()).collect();
        // Calls 5-7 fail (first outage), call 10 starts the next one.
        assert_eq!(
            results,
            vec![true, true, true, true, false, false, false, true, true, false]
        );
    }
}
