//! Golden-file lock on the binary segment layout.
//!
//! The on-disk format is a compatibility surface: segments written by one
//! build must recover under every later build, so the exact bytes — magic,
//! version, header padding, frame framing, varint payloads — are pinned
//! against a checked-in golden file. If an edit to `binfmt` changes these
//! bytes, this test fails and the change must either be reverted or ship
//! as a new `SEGMENT_VERSION` with a migration story (and a regenerated
//! golden via `TPUPOINT_REGEN_GOLDEN=1 cargo test -p tpupoint-profiler
//! --test binary_golden`).

use std::collections::BTreeMap;
use std::path::PathBuf;

use tpupoint_profiler::binfmt::{
    append_frame, encode_step, encode_window, read_segment, segment_header, FRAME_OVERHEAD,
    KIND_STEP, KIND_WINDOW, SEGMENT_HEADER_LEN, SEGMENT_MAGIC, SEGMENT_VERSION,
};
use tpupoint_profiler::{OpStats, StepRecord, WindowRecord};
use tpupoint_simcore::{OpId, SimDuration, SimTime};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("binary_segment.hex")
}

/// The fixed records pinned by the golden file. Chosen so every field is
/// nonzero and the step exercises multi-op varint encoding.
fn golden_step() -> StepRecord {
    let mut ops = BTreeMap::new();
    ops.insert(
        OpId(1),
        OpStats {
            count: 3,
            total: SimDuration::from_micros(1_500),
        },
    );
    ops.insert(
        OpId(7),
        OpStats {
            count: 1,
            total: SimDuration::from_micros(250),
        },
    );
    StepRecord {
        step: 42,
        ops,
        tpu_time: SimDuration::from_micros(1_750),
        mxu_time: SimDuration::from_micros(900),
        host_time: SimDuration::from_micros(120),
        first_start: SimTime::from_micros(10_000),
        last_end: SimTime::from_micros(11_900),
    }
}

fn golden_window() -> WindowRecord {
    WindowRecord {
        index: 5,
        start: SimTime::from_micros(9_000),
        end: SimTime::from_micros(12_000),
        events: 321,
        tpu_busy: SimDuration::from_micros(2_500),
        mxu_busy: SimDuration::from_micros(1_200),
        first_step: 40,
        last_step: 44,
    }
}

/// A full golden segment: header, one step frame, one window frame.
fn golden_segment() -> Vec<u8> {
    let mut segment = segment_header().to_vec();
    let mut payload = Vec::new();
    encode_step(&golden_step(), &mut payload);
    append_frame(KIND_STEP, &payload, &mut segment);
    payload.clear();
    encode_window(&golden_window(), &mut payload);
    append_frame(KIND_WINDOW, &payload, &mut segment);
    segment
}

fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::new();
    for chunk in bytes.chunks(16) {
        for byte in chunk {
            out.push_str(&format!("{byte:02x} "));
        }
        out.pop();
        out.push('\n');
    }
    out
}

fn from_hex(text: &str) -> Vec<u8> {
    text.split_whitespace()
        .map(|pair| u8::from_str_radix(pair, 16).expect("golden file holds hex byte pairs"))
        .collect()
}

#[test]
fn encoded_segment_matches_checked_in_golden_bytes() {
    let segment = golden_segment();
    let path = golden_path();
    if std::env::var_os("TPUPOINT_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, to_hex(&segment)).unwrap();
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden file {} missing ({e}); regenerate with TPUPOINT_REGEN_GOLDEN=1",
            path.display()
        )
    });
    let golden = from_hex(&text);
    assert_eq!(
        segment,
        golden,
        "binary segment layout drifted from the golden file.\nexpected:\n{}\ngot:\n{}\n\
         An intentional format change must bump SEGMENT_VERSION and regenerate the golden.",
        to_hex(&golden),
        to_hex(&segment)
    );
}

#[test]
fn golden_header_fields_sit_at_fixed_offsets() {
    let segment = golden_segment();
    // Magic + version live at fixed offsets so recovery can sniff any
    // future version before attempting to parse frames.
    assert_eq!(&segment[..4], &SEGMENT_MAGIC);
    assert_eq!(segment[4], SEGMENT_VERSION);
    assert_eq!(&segment[5..SEGMENT_HEADER_LEN], &[0, 0, 0], "reserved pad");
    // First frame: kind byte, then little-endian payload length, then CRC.
    assert_eq!(segment[SEGMENT_HEADER_LEN], KIND_STEP);
    let len = u32::from_le_bytes(
        segment[SEGMENT_HEADER_LEN + 1..SEGMENT_HEADER_LEN + 5]
            .try_into()
            .unwrap(),
    ) as usize;
    let window_frame = SEGMENT_HEADER_LEN + FRAME_OVERHEAD + len;
    assert_eq!(segment[window_frame], KIND_WINDOW);
}

#[test]
fn golden_bytes_decode_back_to_the_pinned_records() {
    // Decode the *checked-in* bytes, not freshly encoded ones: this is the
    // forward-compatibility direction — segments already on disk must keep
    // reading back.
    let text = std::fs::read_to_string(golden_path()).expect("golden file present");
    let read = read_segment(&from_hex(&text));
    assert!(read.clean, "golden segment ends on a frame boundary");
    assert_eq!(read.steps, vec![golden_step()]);
    assert_eq!(read.windows, vec![golden_window()]);
}
