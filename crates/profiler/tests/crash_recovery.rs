//! Crash-tolerance integration tests: kill the writer at injected points,
//! reload the record directory, and check the recovered prefix against
//! what the store had acknowledged — plus property tests that the
//! retry/spill layer never loses an acknowledged record.

use proptest::prelude::*;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use tpupoint_par::ThreadPool;
use tpupoint_profiler::{
    recover_records, BinaryStore, BinaryStoreConfig, CompactCrashPoint, FaultConfig, FaultStore,
    InMemoryStore, JsonlStore, PipelineConfig, RecordStore, RetryPolicy, RetryStore, SealPipeline,
    StepRecord, StoreFormat, ThrottledStore, WindowRecord,
};
use tpupoint_simcore::{OpId, SimDuration, SimTime, Track};

const BOTH_FORMATS: [StoreFormat; 2] = [StoreFormat::Jsonl, StoreFormat::Binary];

/// Opens a fresh store of either format on `dir`. The binary store uses a
/// tiny segment size (forcing rotations even in small tests) with inline
/// maintenance, so format-parameterized tests exercise the full
/// rotate/compact machinery rather than a single never-rotated part file.
fn format_store(format: StoreFormat, dir: &Path) -> Box<dyn RecordStore + Send> {
    match format {
        StoreFormat::Jsonl => Box::new(JsonlStore::create(dir).unwrap()),
        StoreFormat::Binary => Box::new(
            BinaryStore::with_config(
                dir,
                BinaryStoreConfig {
                    segment_bytes: 512,
                    background: false,
                    ..BinaryStoreConfig::default()
                },
            )
            .unwrap(),
        ),
    }
}

fn step(n: u64) -> StepRecord {
    let mut r = StepRecord::new(n);
    r.absorb(
        OpId((n % 3) as u32),
        Track::TpuCore(0),
        SimTime::from_micros(n * 10),
        SimDuration::from_micros(7),
        SimDuration::from_micros(2),
    );
    r
}

fn window(i: u64) -> WindowRecord {
    WindowRecord {
        index: i,
        start: SimTime::from_micros(i * 100),
        end: SimTime::from_micros(i * 100 + 100),
        events: 5,
        tpu_busy: SimDuration::from_micros(60),
        mxu_busy: SimDuration::from_micros(20),
        first_step: i,
        last_step: i + 1,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpupoint-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes `total` records, flushing after every `flush_every`, then
/// "kills" the writer at `kill_after` records: the store is leaked so no
/// destructor flushes buffered data, exactly like a `kill -9`.
fn crash_writer(dir: &Path, total: u64, flush_every: u64, kill_after: u64) -> u64 {
    let mut store = JsonlStore::create(dir).unwrap();
    store.set_meta("crash-model", "crash-data");
    let mut flushed = 0;
    for n in 0..total.min(kill_after) {
        store.put_step(&step(n)).unwrap();
        if (n + 1) % flush_every == 0 {
            store.flush().unwrap();
            flushed = n + 1;
        }
    }
    // The crash: no flush, no seal, no Drop (which would flush buffers).
    std::mem::forget(store);
    flushed
}

#[test]
fn kill_points_recover_at_least_the_acknowledged_prefix() {
    for (tag, kill_after) in [("k3", 3u64), ("k10", 10), ("k17", 17), ("k29", 29)] {
        let dir = tmp_dir(tag);
        let flushed = crash_writer(&dir, 30, 5, kill_after);

        let summary = JsonlStore::recover(&dir).unwrap();
        assert!(!summary.sealed_files, "crashed run leaves .part streams");
        assert_eq!(
            summary.missing_acknowledged(),
            (0, 0),
            "every flushed record must survive the crash at {kill_after}"
        );
        assert!(
            summary.steps.len() as u64 >= flushed,
            "recovered {} < acknowledged {flushed}",
            summary.steps.len()
        );
        // The recovered records are exactly the written prefix, in order.
        for (i, r) in summary.steps.iter().enumerate() {
            assert_eq!(r, &step(i as u64));
        }
        let manifest = summary.manifest.as_ref().expect("manifest survives");
        assert!(!manifest.sealed);
        assert_eq!(manifest.model, "crash-model");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn torn_tail_after_crash_is_skipped_not_fatal() {
    let dir = tmp_dir("torn");
    let flushed = crash_writer(&dir, 12, 4, 12);
    assert_eq!(flushed, 12);
    // The kill tore the final line mid-write.
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("steps.jsonl.part"))
        .unwrap();
    f.write_all(b"{\"step\":99,\"ops\":{\"trunc").unwrap();
    drop(f);

    let summary = JsonlStore::recover(&dir).unwrap();
    assert_eq!(summary.steps.len(), 12);
    assert_eq!(summary.skipped_step_lines, 1);
    assert!(summary.is_torn());
    assert_eq!(summary.missing_acknowledged(), (0, 0));
    // The salvage is analyzable: profile shape survives.
    let profile = summary.to_profile();
    assert_eq!(profile.model, "crash-model");
    assert_eq!(profile.steps.len(), 12);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_behind_retry_layer_still_recovers_acknowledged_records() {
    let dir = tmp_dir("retry-chain");
    let jsonl = JsonlStore::create(&dir).unwrap();
    let fault = FaultStore::new(
        jsonl,
        FaultConfig {
            error_probability: 0.3,
            seed: 21,
            ..FaultConfig::default()
        },
    );
    let mut store = RetryStore::with_policy(
        fault,
        RetryPolicy {
            max_retries: 10,
            ..RetryPolicy::default()
        },
    );
    for n in 0..20 {
        store.put_step(&step(n)).unwrap();
    }
    for i in 0..3 {
        store.put_window(&window(i)).unwrap();
    }
    store.inner_mut().set_error_probability(0.0);
    store.flush().unwrap();
    assert_eq!(store.spilled_pending(), 0);
    // Crash after the flush: leak the whole chain, no seal.
    std::mem::forget(store);

    let summary = JsonlStore::recover(&dir).unwrap();
    assert_eq!(summary.missing_acknowledged(), (0, 0));
    assert_eq!(summary.steps.len(), 20);
    assert_eq!(summary.windows.len(), 3);
    let recovered: Vec<u64> = summary.steps.iter().map(|r| r.step).collect();
    assert_eq!(recovered, (0..20).collect::<Vec<_>>());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipeline_kill_points_lose_no_acknowledged_record() {
    let pool = Arc::new(ThreadPool::new(4));
    for (tag, kill_after) in [("pk0", 0u64), ("pk7", 7), ("pk19", 19), ("pk30", 30)] {
        let dir = tmp_dir(&format!("pipe-{tag}"));
        let store = JsonlStore::create(&dir).unwrap();
        let pipeline = SealPipeline::on_pool(
            Box::new(store),
            PipelineConfig { high_water: 4 },
            Arc::clone(&pool),
        );
        pipeline.set_meta("crash-model", "crash-data");
        let mut acked = 0;
        for n in 0..kill_after {
            pipeline.put_step(&step(n));
            if (n + 1) % 5 == 0 {
                // A flush counts as acknowledged only once the drain
                // barrier confirms the workers applied it.
                pipeline.flush();
                pipeline.wait_idle();
                acked = n + 1;
            }
        }
        pipeline.simulate_crash();

        let summary = JsonlStore::recover(&dir).unwrap();
        assert!(!summary.sealed_files, "crashed run leaves .part streams");
        assert_eq!(
            summary.missing_acknowledged(),
            (0, 0),
            "acknowledged record lost at kill point {kill_after}"
        );
        assert!(
            summary.steps.len() as u64 >= acked,
            "recovered {} < acknowledged {acked} at kill point {kill_after}",
            summary.steps.len()
        );
        for (i, r) in summary.steps.iter().enumerate() {
            assert_eq!(r, &step(i as u64), "salvaged prefix must stay in order");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn crash_with_records_in_flight_on_workers_salvages_an_ordered_prefix() {
    let pool = Arc::new(ThreadPool::new(4));
    let dir = tmp_dir("pipe-inflight");
    // Throttle the store so the queue is guaranteed to hold records (and a
    // worker to be mid-write) when the crash lands.
    let store = ThrottledStore::new(JsonlStore::create(&dir).unwrap(), Duration::from_millis(2));
    let pipeline = SealPipeline::on_pool(Box::new(store), PipelineConfig { high_water: 64 }, pool);
    pipeline.set_meta("crash-model", "crash-data");
    for n in 0..40 {
        pipeline.put_step(&step(n));
        if (n + 1) % 10 == 0 {
            pipeline.flush();
        }
    }
    // With a 2ms throttle the drainer is almost certainly mid-write here;
    // if it somehow finished, the test degenerates to full recovery, which
    // the asserts below still cover.
    pipeline.simulate_crash();

    let summary = JsonlStore::recover(&dir).unwrap();
    assert_eq!(summary.missing_acknowledged(), (0, 0));
    assert!(summary.steps.len() <= 40);
    for (i, r) in summary.steps.iter().enumerate() {
        assert_eq!(r, &step(i as u64), "salvaged prefix must stay in order");
    }
    // The salvage is analyzable (what `analyze --recover` loads). The
    // queued set_meta may itself have died with the crash, so only the
    // record shape is guaranteed, not the labels.
    let profile = summary.to_profile();
    assert_eq!(profile.steps.len(), summary.steps.len());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovered_profile_reports_real_op_names_after_crash() {
    let dir = tmp_dir("catalog");
    let names = [
        "Conv2D".to_owned(),
        "Fusion".to_owned(),
        "CrossReplicaSum".to_owned(),
    ];
    let mut store = JsonlStore::create(&dir).unwrap();
    store.set_meta("crash-model", "crash-data");
    store.set_catalog(&names, &[true, true, false], &[false, false, false]);
    for n in 0..6 {
        store.put_step(&step(n)).unwrap();
    }
    store.flush().unwrap();
    std::mem::forget(store);

    let profile = JsonlStore::recover(&dir).unwrap().to_profile();
    // Regression: before the catalog was persisted in the manifest, a
    // salvaged profile could only produce placeholder `op<N>` names.
    assert_eq!(profile.op_names, names);
    assert_eq!(profile.op_uses_mxu, vec![true, true, false]);
    assert_eq!(profile.op_on_host, vec![false, false, false]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sustained_outage_sheds_oldest_spilled_records_first() {
    let fault = FaultStore::new(
        InMemoryStore::new(),
        FaultConfig {
            error_probability: 1.0,
            seed: 3,
            ..FaultConfig::default()
        },
    );
    let mut store = RetryStore::with_policy(
        fault,
        RetryPolicy {
            max_retries: 1,
            max_spill: 8,
            ..RetryPolicy::default()
        },
    );
    // A sustained outage: every put fails, every record spills, and once
    // the bounded queue is full the oldest spilled record is shed.
    for i in 0..20 {
        store.put_step(&step(i)).unwrap();
    }
    assert_eq!(store.records_shed(), 12);
    assert_eq!(store.spilled_pending(), 8);

    store.inner_mut().set_error_probability(0.0);
    store.flush().unwrap();
    assert_eq!(store.spilled_pending(), 0);
    let delivered: Vec<u64> = store
        .inner()
        .inner()
        .steps()
        .iter()
        .map(|r| r.step)
        .collect();
    assert_eq!(
        delivered,
        (12..20).collect::<Vec<_>>(),
        "the freshest tail survives shedding, in submission order"
    );
}

#[test]
fn kill_points_recover_the_acknowledged_prefix_in_both_formats() {
    for format in BOTH_FORMATS {
        for kill_after in [3u64, 10, 17, 29] {
            let dir = tmp_dir(&format!("fmt-{format}-k{kill_after}"));
            let mut store = format_store(format, &dir);
            store.set_meta("crash-model", "crash-data");
            for n in 0..kill_after {
                store.put_step(&step(n)).unwrap();
                if (n + 1) % 5 == 0 {
                    store.flush().unwrap();
                }
            }
            // The crash: no flush, no seal, no Drop.
            std::mem::forget(store);

            let summary = recover_records(&dir).unwrap();
            assert!(!summary.sealed_files, "{format}: crashed run is unsealed");
            assert_eq!(
                summary.missing_acknowledged(),
                (0, 0),
                "{format}: acknowledged record lost at kill point {kill_after}"
            );
            for (i, r) in summary.steps.iter().enumerate() {
                assert_eq!(r, &step(i as u64), "{format}: prefix in order");
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn crash_behind_retry_layer_recovers_acknowledged_records_in_both_formats() {
    for format in BOTH_FORMATS {
        let dir = tmp_dir(&format!("retry-chain-{format}"));
        let fault = FaultStore::new(
            format_store(format, &dir),
            FaultConfig {
                error_probability: 0.3,
                seed: 21,
                ..FaultConfig::default()
            },
        );
        let mut store = RetryStore::with_policy(
            fault,
            RetryPolicy {
                max_retries: 10,
                ..RetryPolicy::default()
            },
        );
        for n in 0..20 {
            store.put_step(&step(n)).unwrap();
        }
        for i in 0..3 {
            store.put_window(&window(i)).unwrap();
        }
        store.inner_mut().set_error_probability(0.0);
        store.flush().unwrap();
        assert_eq!(store.spilled_pending(), 0);
        // Crash after the flush: leak the whole chain, no seal.
        std::mem::forget(store);

        let summary = recover_records(&dir).unwrap();
        assert_eq!(summary.missing_acknowledged(), (0, 0), "{format}");
        assert_eq!(summary.steps.len(), 20, "{format}");
        assert_eq!(summary.windows.len(), 3, "{format}");
        let recovered: Vec<u64> = summary.steps.iter().map(|r| r.step).collect();
        assert_eq!(recovered, (0..20).collect::<Vec<_>>(), "{format}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn compaction_kill_points_through_the_public_recover_path() {
    // Integration twin of the segstore unit test: the crash fires inside a
    // compaction merge scheduled by rotation, and the *auto-detecting*
    // recovery entry point (what `analyze --recover` calls) must see either
    // the pre- or post-compaction segment set — never a mixed one.
    for point in [
        CompactCrashPoint::BeforeRename,
        CompactCrashPoint::BeforeManifest,
        CompactCrashPoint::AfterManifest,
    ] {
        let dir = tmp_dir(&format!("int-killpoint-{point:?}"));
        let mut store = BinaryStore::with_config(
            &dir,
            BinaryStoreConfig {
                segment_bytes: 512,
                compact_segments: 3,
                background: false,
                crash_point: Some(point),
                ..BinaryStoreConfig::default()
            },
        )
        .unwrap();
        for n in 0..60 {
            store.put_step(&step(n)).unwrap();
        }
        store.flush().unwrap();
        std::mem::forget(store); // kill -9 mid-merge

        let summary = recover_records(&dir).unwrap();
        assert_eq!(summary.missing_acknowledged(), (0, 0), "{point:?}");
        let steps: Vec<u64> = summary.steps.iter().map(|r| r.step).collect();
        assert_eq!(
            steps,
            (0..steps.len() as u64).collect::<Vec<_>>(),
            "{point:?}: mixed pre/post state would duplicate or drop steps"
        );
        assert!(steps.len() >= 60, "{point:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn crash_between_manifest_commit_and_sealing_rename_loses_nothing() {
    // rotate() commits the sealed segment to the manifest BEFORE the
    // `.part` → `.bin` rename; a kill -9 between the two leaves a listed
    // segment still under its part name. The auto-detecting recovery
    // path must read it in place — every record in it was acknowledged.
    let dir = tmp_dir("rotate-window");
    let mut store = BinaryStore::with_config(
        &dir,
        BinaryStoreConfig {
            segment_bytes: 512,
            background: false,
            ..BinaryStoreConfig::default()
        },
    )
    .unwrap();
    for n in 0..50 {
        store.put_step(&step(n)).unwrap();
    }
    store.flush().unwrap();
    std::mem::forget(store); // kill -9
    let manifest = recover_records(&dir).unwrap().manifest.unwrap();
    let last = manifest.segments.last().unwrap();
    std::fs::rename(
        dir.join(&last.name),
        dir.join(format!("{}.part", last.name)),
    )
    .unwrap();

    let summary = recover_records(&dir).unwrap();
    assert_eq!(summary.missing_acknowledged(), (0, 0));
    let steps: Vec<u64> = summary.steps.iter().map(|r| r.step).collect();
    assert_eq!(
        steps,
        (0..50).collect::<Vec<_>>(),
        "no loss, no duplication"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipelined_seal_with_background_maintenance_completes() {
    // Regression guard for the seal-vs-maintenance pool deadlock: seal()
    // runs on a pool worker (inside the drain task) while rotations have
    // queued a background maintenance pass; seal must steal the queued
    // pass instead of waiting for a job that may sit behind it in the
    // pool FIFO. A regression here hangs the test rather than failing an
    // assert.
    let pool = Arc::new(ThreadPool::new(2));
    let dir = tmp_dir("pipe-seal-maint");
    let store = BinaryStore::with_config(
        &dir,
        BinaryStoreConfig {
            segment_bytes: 512,
            compact_segments: 3,
            background: true,
            ..BinaryStoreConfig::default()
        },
    )
    .unwrap();
    let pipeline = SealPipeline::on_pool(Box::new(store), PipelineConfig::default(), pool);
    for n in 0..200 {
        pipeline.put_step(&step(n));
    }
    pipeline.seal();
    pipeline.wait_idle();
    assert!(pipeline.take_errors().is_empty());

    let summary = recover_records(&dir).unwrap();
    assert_eq!(summary.missing_acknowledged(), (0, 0));
    let steps: Vec<u64> = summary.steps.iter().map(|r| r.step).collect();
    assert_eq!(steps, (0..200).collect::<Vec<_>>());
    assert!(summary.manifest.unwrap().sealed);
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    /// Whatever the fault rate, seed, or record count: every put the
    /// retry layer acknowledges is delivered (in order) once the backing
    /// store recovers — no acknowledged record is ever lost.
    #[test]
    fn retry_over_faults_never_loses_an_acknowledged_record(
        prob in 0u32..90,
        seed in 0u64..50,
        n in 1u64..60,
    ) {
        let fault = FaultStore::new(
            InMemoryStore::new(),
            FaultConfig {
                error_probability: f64::from(prob) / 100.0,
                seed,
                ..FaultConfig::default()
            },
        );
        let mut store = RetryStore::with_policy(
            fault,
            RetryPolicy { max_retries: 3, seed, ..RetryPolicy::default() },
        );
        for i in 0..n {
            // The resilient layer acknowledges every put.
            prop_assert!(store.put_step(&step(i)).is_ok());
        }
        // The backing store comes back; the final flush must drain all.
        store.inner_mut().set_error_probability(0.0);
        prop_assert!(store.flush().is_ok());
        prop_assert_eq!(store.spilled_pending(), 0);
        let delivered: Vec<u64> =
            store.inner().inner().steps().iter().map(|r| r.step).collect();
        prop_assert_eq!(delivered, (0..n).collect::<Vec<_>>());
    }

    /// A flushed JSONL stream plus arbitrary appended garbage always
    /// recovers the full acknowledged prefix.
    #[test]
    fn any_garbage_tail_recovers_the_flushed_prefix(
        n in 1u64..25,
        garbage in proptest::collection::vec(0u32..256, 1usize..64),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tpupoint-crash-prop-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = JsonlStore::create(&dir).unwrap();
        for i in 0..n {
            store.put_step(&step(i)).unwrap();
        }
        store.flush().unwrap();
        std::mem::forget(store);
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("steps.jsonl.part"))
            .unwrap();
        // Never a bare newline first: garbage joins the (empty) last line.
        let garbage: Vec<u8> = garbage.iter().map(|&b| b as u8).collect();
        f.write_all(b"{").unwrap();
        f.write_all(&garbage).unwrap();
        drop(f);

        let summary = JsonlStore::recover(&dir).unwrap();
        prop_assert_eq!(summary.missing_acknowledged(), (0, 0));
        prop_assert!(summary.steps.len() as u64 >= n);
        let recovered: Vec<u64> = summary.steps.iter().map(|r| r.step).collect();
        prop_assert_eq!(&recovered[..n as usize], &(0..n).collect::<Vec<_>>()[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Format-generic twin of the retry property: whatever the fault rate
    /// or seed, a fault-injected, retry-decorated store of EITHER format
    /// that acknowledged every put hands every record back through the
    /// auto-detecting recovery path once the faults clear.
    #[test]
    fn retry_over_faults_never_loses_acknowledged_records_in_either_format(
        prob in 0u32..90,
        seed in 0u64..30,
        n in 1u64..40,
    ) {
        for format in BOTH_FORMATS {
            let dir = std::env::temp_dir().join(format!(
                "tpupoint-crash-fprop-{format}-{prob}-{seed}-{n}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let fault = FaultStore::new(
                format_store(format, &dir),
                FaultConfig {
                    error_probability: f64::from(prob) / 100.0,
                    seed,
                    ..FaultConfig::default()
                },
            );
            let mut store = RetryStore::with_policy(
                fault,
                RetryPolicy { max_retries: 10, seed, ..RetryPolicy::default() },
            );
            for i in 0..n {
                prop_assert!(store.put_step(&step(i)).is_ok());
            }
            store.inner_mut().set_error_probability(0.0);
            prop_assert!(store.flush().is_ok());
            prop_assert_eq!(store.spilled_pending(), 0);
            std::mem::forget(store);

            let summary = recover_records(&dir).unwrap();
            prop_assert_eq!(summary.missing_acknowledged(), (0, 0));
            let recovered: Vec<u64> = summary.steps.iter().map(|r| r.step).collect();
            prop_assert_eq!(recovered, (0..n).collect::<Vec<_>>());
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    /// Binary twin of the garbage-tail property: arbitrary bytes appended
    /// to the active segment after a flush never panic the frame decoder
    /// and never cost an acknowledged record.
    #[test]
    fn binary_garbage_tail_recovers_the_flushed_prefix(
        n in 1u64..40,
        garbage in proptest::collection::vec(0u32..256, 1usize..96),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tpupoint-crash-bprop-{n}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = format_store(StoreFormat::Binary, &dir);
        for i in 0..n {
            store.put_step(&step(i)).unwrap();
        }
        store.flush().unwrap();
        std::mem::forget(store);
        let part = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.to_string_lossy().ends_with(".bin.part"))
            .expect("crashed binary run leaves an active .bin.part");
        let garbage: Vec<u8> = garbage.iter().map(|&b| b as u8).collect();
        let mut f = std::fs::OpenOptions::new().append(true).open(part).unwrap();
        f.write_all(&garbage).unwrap();
        drop(f);

        let summary = recover_records(&dir).unwrap();
        prop_assert_eq!(summary.missing_acknowledged(), (0, 0));
        prop_assert!(summary.steps.len() as u64 >= n);
        let recovered: Vec<u64> = summary.steps.iter().map(|r| r.step).collect();
        prop_assert_eq!(&recovered[..n as usize], &(0..n).collect::<Vec<_>>()[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Flipping or truncating ANY byte of ANY sealed segment never panics
    /// the decoder: recovery still returns, the surviving records are
    /// genuine (CRC-verified) and in order, and nothing is silently
    /// invented — corrupted acknowledged records show up as missing, not
    /// as garbage steps.
    #[test]
    fn binary_corruption_anywhere_never_panics_or_invents_records(
        n in 5u64..40,
        file_pick in 0usize..8,
        offset in 0usize..4096,
        mode in 0u32..2,
        flip in 0u32..255,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "tpupoint-crash-cprop-{n}-{file_pick}-{offset}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = BinaryStore::with_config(
            &dir,
            BinaryStoreConfig {
                segment_bytes: 256,
                compact_segments: usize::MAX,
                background: false,
                ..BinaryStoreConfig::default()
            },
        )
        .unwrap();
        for i in 0..n {
            store.put_step(&step(i)).unwrap();
        }
        store.seal().unwrap();
        drop(store);
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "bin"))
            .collect();
        segments.sort();
        prop_assert!(!segments.is_empty());
        let victim = &segments[file_pick % segments.len()];
        let mut bytes = std::fs::read(victim).unwrap();
        if mode == 0 {
            bytes.truncate(offset % (bytes.len() + 1));
        } else {
            let at = offset % bytes.len();
            bytes[at] ^= (flip as u8).wrapping_add(1); // nonzero xor: a real flip
        }
        std::fs::write(victim, &bytes).unwrap();

        let summary = recover_records(&dir).unwrap();
        let mut last = None;
        for r in &summary.steps {
            prop_assert_eq!(r, &step(r.step), "surviving records are genuine");
            prop_assert!(last.is_none_or(|l| l < r.step), "strictly ordered");
            last = Some(r.step);
        }
        // Accounting closes: what recovery didn't hand back is reported
        // missing, never silently dropped.
        let (missing_steps, _) = summary.missing_acknowledged();
        prop_assert_eq!(summary.steps.len() as u64 + missing_steps, n);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
