//! Exporters turning a [`MetricsSnapshot`] into JSON or Prometheus text.

use crate::metrics::MetricsSnapshot;
use crate::trace::json_string;

/// Renders the snapshot as a JSON document:
///
/// ```json
/// {
///   "counters": {"profiler.windows_sealed": 12},
///   "gauges": {"profiler.overhead_ratio": 1.03},
///   "histograms": {
///     "span.analyzer.kmeans": {
///       "count": 3, "sum": 4500, "min": 900, "max": 2100,
///       "buckets": [[1023, 1], [2047, 2]]
///     }
///   }
/// }
/// ```
///
/// Bucket entries are `[inclusive_upper_bound, count]` pairs over the
/// registry's power-of-two boundaries. Keys are emitted sorted, so the
/// output is deterministic for a given snapshot.
pub fn to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {value}", json_string(name)));
    }
    if !snapshot.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"gauges\": {");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {}: {}",
            json_string(name),
            float_json(*value)
        ));
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"histograms\": {");
    for (i, (name, hist)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let buckets: Vec<String> = hist
            .buckets
            .iter()
            .map(|(le, n)| format!("[{le}, {n}]"))
            .collect();
        out.push_str(&format!(
            "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}]}}",
            json_string(name),
            hist.count,
            hist.sum,
            hist.min,
            hist.max,
            buckets.join(", ")
        ));
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// Renders the snapshot in the Prometheus text exposition format.
///
/// Metric names are sanitized (`.` and `-` become `_`) and prefixed with
/// `tpupoint_`; every series carries a `# HELP` and `# TYPE` header, and
/// histograms expand into the conventional `_bucket` (cumulative, with a
/// final `+Inf`), `_sum`, and `_count` series.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    to_prometheus_labeled(snapshot, &[])
}

/// [`to_prometheus`] with a set of constant labels attached to every
/// series — serve mode uses this to stamp each scrape with the workload
/// it observes. Label values are escaped per the exposition format.
pub fn to_prometheus_labeled(snapshot: &MetricsSnapshot, labels: &[(&str, &str)]) -> String {
    let plain = label_block(labels, None);
    let mut out = String::new();
    // `sim.lane_events.<L>` counters form a family exactly like the phase
    // occupancy gauges below: one HELP/TYPE header, a `lane="L"` label per
    // member.
    let mut lane_header_done = false;
    for (name, value) in &snapshot.counters {
        if let Some(lane) = name.strip_prefix(LANE_EVENTS_PREFIX) {
            if lane.chars().all(|c| c.is_ascii_digit()) && !lane.is_empty() {
                let family = LANE_EVENTS_PREFIX.trim_end_matches('.');
                let prom = prom_name(family);
                if !lane_header_done {
                    push_headers(&mut out, &prom, family, "counter");
                    lane_header_done = true;
                }
                let mut with_lane = labels.to_vec();
                with_lane.push(("lane", lane));
                let block = label_block(&with_lane, None);
                out.push_str(&format!("{prom}{block} {value}\n"));
                continue;
            }
        }
        let prom = prom_name(name);
        push_headers(&mut out, &prom, name, "counter");
        out.push_str(&format!("{prom}{plain} {value}\n"));
    }
    // `analyzer.phase_occupancy.<N>` gauges are one *family*: they share
    // a single HELP/TYPE header and export as a `phase="N"` label on one
    // series name. The registry itself has no labeled series, so the
    // phase id rides in the dotted name until this point. BTreeMap
    // ordering keeps the family contiguous, so the header is emitted
    // once, before the first member.
    let mut phase_header_done = false;
    for (name, value) in &snapshot.gauges {
        if let Some(phase) = name.strip_prefix(PHASE_OCCUPANCY_PREFIX) {
            if phase.chars().all(|c| c.is_ascii_digit()) && !phase.is_empty() {
                let family = PHASE_OCCUPANCY_PREFIX.trim_end_matches('.');
                let prom = prom_name(family);
                if !phase_header_done {
                    push_headers(&mut out, &prom, family, "gauge");
                    phase_header_done = true;
                }
                let mut with_phase = labels.to_vec();
                with_phase.push(("phase", phase));
                let block = label_block(&with_phase, None);
                out.push_str(&format!("{prom}{block} {}\n", float_json(*value)));
                continue;
            }
        }
        let prom = prom_name(name);
        push_headers(&mut out, &prom, name, "gauge");
        out.push_str(&format!("{prom}{plain} {}\n", float_json(*value)));
    }
    for (name, hist) in &snapshot.histograms {
        let prom = prom_name(name);
        push_headers(&mut out, &prom, name, "histogram");
        let mut cumulative = 0u64;
        for (le, count) in &hist.buckets {
            cumulative += count;
            let with_le = label_block(labels, Some(&le.to_string()));
            out.push_str(&format!("{prom}_bucket{with_le} {cumulative}\n"));
        }
        let inf = label_block(labels, Some("+Inf"));
        out.push_str(&format!("{prom}_bucket{inf} {}\n", hist.count));
        out.push_str(&format!("{prom}_sum{plain} {}\n", hist.sum));
        out.push_str(&format!("{prom}_count{plain} {}\n", hist.count));
    }
    out
}

/// One labeled registry view inside a multi-registry exposition; see
/// [`to_prometheus_multi`].
#[derive(Debug, Clone, Default)]
pub struct LabeledSnapshot {
    /// Constant labels stamped on every series from this snapshot
    /// (e.g. `[("job", "bert-a"), ("tenant", "alice")]`).
    pub labels: Vec<(String, String)>,
    /// The registry view itself.
    pub snapshot: MetricsSnapshot,
}

impl LabeledSnapshot {
    /// Convenience constructor from borrowed label pairs.
    pub fn new(labels: &[(&str, &str)], snapshot: MetricsSnapshot) -> LabeledSnapshot {
        LabeledSnapshot {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            snapshot,
        }
    }
}

/// Borrowed-snapshot variant of [`LabeledSnapshot`]: the labels are
/// owned, the registry view is not. The fleet's scrape plane renders its
/// *published* snapshots (shared `Arc`s swapped by the jobs themselves)
/// through this type, so a scrape never clones a snapshot just to
/// exposition it.
#[derive(Debug, Clone)]
pub struct LabeledSnapshotRef<'a> {
    /// Constant labels stamped on every series from this snapshot.
    pub labels: Vec<(String, String)>,
    /// The borrowed registry view.
    pub snapshot: &'a MetricsSnapshot,
}

impl<'a> LabeledSnapshotRef<'a> {
    /// Convenience constructor from borrowed label pairs.
    pub fn new(labels: &[(&str, &str)], snapshot: &'a MetricsSnapshot) -> LabeledSnapshotRef<'a> {
        LabeledSnapshotRef {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            snapshot,
        }
    }
}

/// Renders several labeled registries (the fleet's per-job registries
/// plus the process-wide one) as a single Prometheus exposition.
///
/// Naive concatenation of [`to_prometheus_labeled`] outputs would repeat
/// each family's `# HELP`/`# TYPE` headers once per registry — invalid
/// exposition text. This exporter groups series by family first: one
/// header per family, then every registry's series for it, each stamped
/// with that registry's constant labels. The `analyzer.phase_occupancy.*`
/// and `sim.lane_events.*` dotted-name families keep their `phase=`/
/// `lane=` label treatment.
pub fn to_prometheus_multi(groups: &[LabeledSnapshot]) -> String {
    let borrowed: Vec<LabeledSnapshotRef<'_>> = groups
        .iter()
        .map(|group| LabeledSnapshotRef {
            labels: group.labels.clone(),
            snapshot: &group.snapshot,
        })
        .collect();
    to_prometheus_multi_ref(&borrowed)
}

/// [`to_prometheus_multi`] over borrowed snapshots; see
/// [`LabeledSnapshotRef`].
pub fn to_prometheus_multi_ref(groups: &[LabeledSnapshotRef<'_>]) -> String {
    type Labels = Vec<(String, String)>;
    type Series = Vec<(Labels, String)>;
    type HistSeries = Vec<(Labels, crate::metrics::HistogramSnapshot)>;
    let mut counters: std::collections::BTreeMap<String, Series> = Default::default();
    let mut gauges: std::collections::BTreeMap<String, Series> = Default::default();
    let mut histograms: std::collections::BTreeMap<String, HistSeries> = Default::default();
    // Splits family members like `sim.lane_events.3` into the family name
    // and an extra `lane="3"` pair; plain names pass through unchanged.
    let family_of = |name: &str, prefix: &str, label: &str| -> (String, Option<(String, String)>) {
        if let Some(suffix) = name.strip_prefix(prefix) {
            if !suffix.is_empty() && suffix.chars().all(|c| c.is_ascii_digit()) {
                return (
                    prefix.trim_end_matches('.').to_owned(),
                    Some((label.to_owned(), suffix.to_owned())),
                );
            }
        }
        (name.to_owned(), None)
    };
    for group in groups {
        for (name, value) in &group.snapshot.counters {
            let (family, extra) = family_of(name, LANE_EVENTS_PREFIX, "lane");
            let mut labels = group.labels.clone();
            labels.extend(extra);
            counters
                .entry(family)
                .or_default()
                .push((labels, value.to_string()));
        }
        for (name, value) in &group.snapshot.gauges {
            let (family, extra) = family_of(name, PHASE_OCCUPANCY_PREFIX, "phase");
            let mut labels = group.labels.clone();
            labels.extend(extra);
            gauges
                .entry(family)
                .or_default()
                .push((labels, float_json(*value)));
        }
        for (name, hist) in &group.snapshot.histograms {
            histograms
                .entry(name.clone())
                .or_default()
                .push((group.labels.clone(), hist.clone()));
        }
    }
    let owned_block = |labels: &[(String, String)], le: Option<&str>| {
        let borrowed: Vec<(&str, &str)> = labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        label_block(&borrowed, le)
    };
    let mut out = String::new();
    for (kind, families) in [("counter", &counters), ("gauge", &gauges)] {
        for (family, series) in families {
            let prom = prom_name(family);
            push_headers(&mut out, &prom, family, kind);
            for (labels, value) in series {
                out.push_str(&format!("{prom}{} {value}\n", owned_block(labels, None)));
            }
        }
    }
    for (name, series) in &histograms {
        let prom = prom_name(name);
        push_headers(&mut out, &prom, name, "histogram");
        for (labels, hist) in series {
            let mut cumulative = 0u64;
            for (le, count) in &hist.buckets {
                cumulative += count;
                let with_le = owned_block(labels, Some(&le.to_string()));
                out.push_str(&format!("{prom}_bucket{with_le} {cumulative}\n"));
            }
            let inf = owned_block(labels, Some("+Inf"));
            let plain = owned_block(labels, None);
            out.push_str(&format!("{prom}_bucket{inf} {}\n", hist.count));
            out.push_str(&format!("{prom}_sum{plain} {}\n", hist.sum));
            out.push_str(&format!("{prom}_count{plain} {}\n", hist.count));
        }
    }
    out
}

/// Gauge-name prefix whose suffix is a phase id, exported as a
/// `phase="N"` label on the family series.
const PHASE_OCCUPANCY_PREFIX: &str = "analyzer.phase_occupancy.";

/// Counter-name prefix whose suffix is a simulation-lane id, exported as
/// a `lane="L"` label on the family series.
const LANE_EVENTS_PREFIX: &str = "sim.lane_events.";

fn push_headers(out: &mut String, prom: &str, raw: &str, kind: &str) {
    out.push_str(&format!(
        "# HELP {prom} {}\n# TYPE {prom} {kind}\n",
        prom_escape_help(&help_text(raw))
    ));
}

/// Renders a `{k="v",...}` label block; empty labels (and no `le`) render
/// as the empty string so unlabeled series keep their bare form.
fn label_block(labels: &[(&str, &str)], le: Option<&str>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape_label(v)))
        .collect();
    if let Some(le) = le {
        pairs.push(format!("le=\"{le}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Escapes a `# HELP` text: `\` and newlines per the exposition format.
pub fn prom_escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: `\`, `"`, and newlines per the exposition
/// format.
pub fn prom_escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Human description served on the `# HELP` line of a series.
fn help_text(name: &str) -> String {
    let known = match name {
        "profiler.store_errors" => "Record-store operations that failed, including transient failures later absorbed by the retry layer",
        "profiler.store_retries" => "Retry attempts performed by the record-store resilience layer",
        "profiler.records_spilled" => "Records diverted to the in-memory spill queue while the backing store was down",
        "profiler.records_shed" => "Oldest spilled records shed at the spill queue's high-water mark",
        "profiler.store_spill_depth" => "Spilled records still awaiting redelivery to the backing store",
        "profiler.store_backoff_us" => "Jittered exponential retry backoff per attempt, microseconds",
        "profiler.windows_sealed" => "Profile windows sealed and kept",
        "profiler.windows_dropped" => "Profile windows lost to simulated collection faults",
        "profiler.events_recorded" => "Trace events recorded into kept windows",
        "profiler.events_lost" => "Trace events lost with dropped windows",
        "profiler.seal_latency_us" => "Wall time applying one drained seal-pipeline operation, microseconds",
        "profiler.seal_backpressure_waits" => "Times the simulation thread blocked on the seal queue's high-water mark",
        "profiler.seal_queue_depth" => "Operations queued in the seal pipeline",
        "profiler.overhead_ratio" => "Instrumented-to-uninstrumented wall-clock ratio (measured when profiler.overhead_measured is set, modeled otherwise)",
        "profiler.overhead_measured" => "1 when the overhead ratio was measured against an uninstrumented twin run; absent when modeled",
        "analyzer.phase_occupancy" => "Training steps currently assigned to each streaming-analyzer phase",
        "analyzer.phase_stability" => "Fraction of previously-labeled sampled steps whose phase assignment survived the latest streaming update",
        "analyzer.phase_count" => "Phases with at least one assigned step in the streaming analyzer",
        "analyzer.stable_windows" => "Consecutive streaming updates at or above the stability threshold",
        "analyzer.last_transition_step" => "Step of the most recent phase-label change in the streaming timeline",
        "sim.lane_events" => "Signals delivered per simulation lane by the laned engine",
        "sim.sync_barriers" => "Conservative time-window sync barriers executed by the laned engine",
        "sim.lookahead_stall_us" => "Simulated time lanes overshot the conservative horizon when batches were cut short, microseconds",
        "store.segments" => "Sealed binary segments currently listed in the store manifest",
        "store.compactions" => "Binary segment compaction merges completed",
        "store.bytes_reclaimed" => "Bytes of disk freed by segment maintenance: compaction merges (net) plus retention-retired segments",
        "store.bytes_written" => "Bytes of encoded frames written to binary segment files",
        "store.records_retired" => "Acknowledged records retired (accounted, not lost) by the retention budget",
        "fleet.jobs_running" => "Fleet jobs currently executing on their job threads",
        "fleet.jobs_queued" => "Fleet jobs admitted and waiting for a running slot",
        "fleet.jobs_total" => "Fleet jobs ever admitted, terminal phases included",
        "fleet.memory_budget_bytes" => "Configured fleet-wide memory budget; 0 means unbounded",
        "fleet.memory_inuse_bytes" => "Admission-accounted memory of active fleet jobs (per-job floor times active jobs)",
        "fleet.poisoned" => "Poisoned-lock recoveries performed by the fleet orchestrator",
        "fleet.snapshot_publishes" => "Per-job metrics snapshots published into the scrape plane's slots",
        "audit.gaps" => "Coverage gaps found by the window audit",
        "audit.overlaps" => "Window overlaps found by the window audit",
        "audit.unobserved_fraction" => "Fraction of the profiled span not covered by any window",
        "obs.http_requests" => "HTTP requests served by the live observability endpoint",
        _ => "",
    };
    if !known.is_empty() {
        return known.to_owned();
    }
    if let Some(span) = name.strip_prefix("span.") {
        return format!("Wall time of `{span}` spans, microseconds");
    }
    format!("TPUPoint self-observability series `{name}`")
}

fn prom_name(name: &str) -> String {
    let sanitized: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("tpupoint_{sanitized}")
}

fn float_json(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    fn sample() -> MetricsSnapshot {
        let metrics = Metrics::new();
        metrics.counter("profiler.windows_sealed").add(12);
        metrics.gauge("profiler.overhead_ratio").set(1.03);
        let h = metrics.histogram("span.analyzer.kmeans");
        h.record(900);
        h.record(1500);
        h.record(2100);
        metrics.snapshot()
    }

    #[test]
    fn json_export_is_well_formed_and_complete() {
        let json = to_json(&sample());
        assert!(json.contains("\"profiler.windows_sealed\": 12"));
        assert!(json.contains("\"profiler.overhead_ratio\": 1.03"));
        assert!(json.contains("\"span.analyzer.kmeans\""));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"sum\": 4500"));
        // Balanced braces as a cheap well-formedness check; the CLI
        // integration test parses it with a real JSON parser.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let json = to_json(&MetricsSnapshot::default());
        assert!(json.contains("\"counters\": {}"));
        assert_eq!(to_prometheus(&MetricsSnapshot::default()), "");
    }

    #[test]
    fn prometheus_export_expands_histograms_cumulatively() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE tpupoint_profiler_windows_sealed counter"));
        assert!(text.contains("tpupoint_profiler_windows_sealed 12"));
        assert!(text.contains("# TYPE tpupoint_profiler_overhead_ratio gauge"));
        assert!(text.contains("# TYPE tpupoint_span_analyzer_kmeans histogram"));
        // 900 falls in [512, 1024), 1500 and 2100 in the next two.
        assert!(text.contains("tpupoint_span_analyzer_kmeans_bucket{le=\"1023\"} 1"));
        assert!(text.contains("tpupoint_span_analyzer_kmeans_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tpupoint_span_analyzer_kmeans_sum 4500"));
        assert!(text.contains("tpupoint_span_analyzer_kmeans_count 3"));
    }

    #[test]
    fn prometheus_export_carries_help_lines() {
        let text = to_prometheus(&sample());
        assert!(
            text.contains("# HELP tpupoint_profiler_windows_sealed Profile windows sealed"),
            "{text}"
        );
        assert!(
            text.contains("# HELP tpupoint_span_analyzer_kmeans Wall time of `analyzer.kmeans`"),
            "{text}"
        );
        // Every TYPE line is preceded by its HELP line.
        assert_eq!(
            text.matches("# HELP").count(),
            text.matches("# TYPE").count()
        );
    }

    #[test]
    fn constant_labels_attach_to_every_series_and_compose_with_le() {
        let text = to_prometheus_labeled(&sample(), &[("workload", "bert-mrpc")]);
        assert!(text.contains("tpupoint_profiler_windows_sealed{workload=\"bert-mrpc\"} 12"));
        assert!(text.contains(
            "tpupoint_span_analyzer_kmeans_bucket{workload=\"bert-mrpc\",le=\"+Inf\"} 3"
        ));
        assert!(text.contains("tpupoint_span_analyzer_kmeans_sum{workload=\"bert-mrpc\"} 4500"));
        // HELP/TYPE headers stay unlabeled.
        assert!(text.contains("# TYPE tpupoint_profiler_windows_sealed counter\n"));
    }

    #[test]
    fn phase_occupancy_gauges_export_as_one_labeled_family() {
        let metrics = Metrics::new();
        metrics.gauge("analyzer.phase_occupancy.0").set(12.0);
        metrics.gauge("analyzer.phase_occupancy.1").set(30.0);
        metrics.gauge("analyzer.phase_stability").set(0.97);
        let text = to_prometheus_labeled(&metrics.snapshot(), &[("workload", "bert-mrpc")]);
        assert!(
            text.contains(
                "tpupoint_analyzer_phase_occupancy{workload=\"bert-mrpc\",phase=\"0\"} 12"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "tpupoint_analyzer_phase_occupancy{workload=\"bert-mrpc\",phase=\"1\"} 30"
            ),
            "{text}"
        );
        // One HELP/TYPE header for the whole family, none per member.
        assert_eq!(
            text.matches("# TYPE tpupoint_analyzer_phase_occupancy gauge")
                .count(),
            1,
            "{text}"
        );
        // Unsuffixed analyzer gauges keep their bare form.
        assert!(
            text.contains("tpupoint_analyzer_phase_stability{workload=\"bert-mrpc\"} 0.97"),
            "{text}"
        );
    }

    #[test]
    fn lane_event_counters_export_as_one_labeled_family() {
        let metrics = Metrics::new();
        metrics.counter("sim.lane_events.0").add(512);
        metrics.counter("sim.lane_events.1").add(301);
        metrics.counter("sim.sync_barriers").add(44);
        let text = to_prometheus_labeled(&metrics.snapshot(), &[("workload", "bert-mrpc")]);
        assert!(
            text.contains("tpupoint_sim_lane_events{workload=\"bert-mrpc\",lane=\"0\"} 512"),
            "{text}"
        );
        assert!(
            text.contains("tpupoint_sim_lane_events{workload=\"bert-mrpc\",lane=\"1\"} 301"),
            "{text}"
        );
        assert_eq!(
            text.matches("# TYPE tpupoint_sim_lane_events counter")
                .count(),
            1,
            "{text}"
        );
        // Unsuffixed sim counters keep their bare form.
        assert!(
            text.contains("tpupoint_sim_sync_barriers{workload=\"bert-mrpc\"} 44"),
            "{text}"
        );
    }

    #[test]
    fn non_numeric_phase_suffix_falls_back_to_a_plain_series() {
        let metrics = Metrics::new();
        metrics.gauge("analyzer.phase_occupancy.odd-name").set(1.0);
        let text = to_prometheus(&metrics.snapshot());
        assert!(
            text.contains("tpupoint_analyzer_phase_occupancy_odd_name 1"),
            "{text}"
        );
        assert!(!text.contains("phase=\""), "{text}");
    }

    #[test]
    fn multi_registry_export_emits_one_header_per_family() {
        let job_a = Metrics::new();
        job_a.counter("profiler.windows_sealed").add(5);
        job_a.gauge("analyzer.phase_occupancy.0").set(3.0);
        job_a.histogram("profiler.store_backoff_us").record(100);
        let job_b = Metrics::new();
        job_b.counter("profiler.windows_sealed").add(9);
        job_b.counter("sim.lane_events.1").add(7);
        job_b.histogram("profiler.store_backoff_us").record(900);
        let text = to_prometheus_multi(&[
            LabeledSnapshot::new(&[("job", "a")], job_a.snapshot()),
            LabeledSnapshot::new(&[("job", "b")], job_b.snapshot()),
        ]);
        // Both jobs' series share one HELP/TYPE header per family.
        assert_eq!(
            text.matches("# TYPE tpupoint_profiler_windows_sealed counter")
                .count(),
            1,
            "{text}"
        );
        assert!(text.contains("tpupoint_profiler_windows_sealed{job=\"a\"} 5"));
        assert!(text.contains("tpupoint_profiler_windows_sealed{job=\"b\"} 9"));
        // Dotted-name families keep their phase/lane label treatment.
        assert!(
            text.contains("tpupoint_analyzer_phase_occupancy{job=\"a\",phase=\"0\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("tpupoint_sim_lane_events{job=\"b\",lane=\"1\"} 7"),
            "{text}"
        );
        // Histograms expand per job under one header.
        assert_eq!(
            text.matches("# TYPE tpupoint_profiler_store_backoff_us histogram")
                .count(),
            1,
            "{text}"
        );
        assert!(text.contains("tpupoint_profiler_store_backoff_us_sum{job=\"a\"} 100"));
        assert!(text.contains("tpupoint_profiler_store_backoff_us_sum{job=\"b\"} 900"));
        // An unlabeled group (the process-wide registry) keeps bare series.
        let plain = Metrics::new();
        plain.counter("obs.http_requests").add(2);
        let text = to_prometheus_multi(&[LabeledSnapshot::new(&[], plain.snapshot())]);
        assert!(text.contains("tpupoint_obs_http_requests 2\n"), "{text}");
    }

    #[test]
    fn multi_registry_export_matches_single_for_one_group() {
        let snapshot = sample();
        let single = to_prometheus_labeled(&snapshot, &[("workload", "bert-mrpc")]);
        let multi =
            to_prometheus_multi(&[LabeledSnapshot::new(&[("workload", "bert-mrpc")], snapshot)]);
        assert_eq!(single, multi);
    }

    #[test]
    fn label_values_and_help_text_are_escaped() {
        assert_eq!(prom_escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(
            prom_escape_help("line\nbreak\\slash"),
            "line\\nbreak\\\\slash"
        );
        let metrics = Metrics::new();
        metrics.counter("weird").inc();
        let text = to_prometheus_labeled(&metrics.snapshot(), &[("path", "C:\\tmp\n\"x\"")]);
        assert!(
            text.contains("tpupoint_weird{path=\"C:\\\\tmp\\n\\\"x\\\"\"} 1"),
            "{text}"
        );
    }
}
