//! Exporters turning a [`MetricsSnapshot`] into JSON or Prometheus text.

use crate::metrics::MetricsSnapshot;
use crate::trace::json_string;

/// Renders the snapshot as a JSON document:
///
/// ```json
/// {
///   "counters": {"profiler.windows_sealed": 12},
///   "gauges": {"profiler.overhead_ratio": 1.03},
///   "histograms": {
///     "span.analyzer.kmeans": {
///       "count": 3, "sum": 4500, "min": 900, "max": 2100,
///       "buckets": [[1023, 1], [2047, 2]]
///     }
///   }
/// }
/// ```
///
/// Bucket entries are `[inclusive_upper_bound, count]` pairs over the
/// registry's power-of-two boundaries. Keys are emitted sorted, so the
/// output is deterministic for a given snapshot.
pub fn to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}: {value}", json_string(name)));
    }
    if !snapshot.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"gauges\": {");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {}: {}",
            json_string(name),
            float_json(*value)
        ));
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"histograms\": {");
    for (i, (name, hist)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let buckets: Vec<String> = hist
            .buckets
            .iter()
            .map(|(le, n)| format!("[{le}, {n}]"))
            .collect();
        out.push_str(&format!(
            "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}]}}",
            json_string(name),
            hist.count,
            hist.sum,
            hist.min,
            hist.max,
            buckets.join(", ")
        ));
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("}\n}\n");
    out
}

/// Renders the snapshot in the Prometheus text exposition format.
///
/// Metric names are sanitized (`.` and `-` become `_`) and prefixed with
/// `tpupoint_`; histograms expand into the conventional `_bucket`
/// (cumulative, with a final `+Inf`), `_sum`, and `_count` series.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let prom = prom_name(name);
        out.push_str(&format!("# TYPE {prom} counter\n{prom} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let prom = prom_name(name);
        out.push_str(&format!(
            "# TYPE {prom} gauge\n{prom} {}\n",
            float_json(*value)
        ));
    }
    for (name, hist) in &snapshot.histograms {
        let prom = prom_name(name);
        out.push_str(&format!("# TYPE {prom} histogram\n"));
        let mut cumulative = 0u64;
        for (le, count) in &hist.buckets {
            cumulative += count;
            out.push_str(&format!("{prom}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{prom}_bucket{{le=\"+Inf\"}} {}\n", hist.count));
        out.push_str(&format!("{prom}_sum {}\n", hist.sum));
        out.push_str(&format!("{prom}_count {}\n", hist.count));
    }
    out
}

fn prom_name(name: &str) -> String {
    let sanitized: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("tpupoint_{sanitized}")
}

fn float_json(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    fn sample() -> MetricsSnapshot {
        let metrics = Metrics::new();
        metrics.counter("profiler.windows_sealed").add(12);
        metrics.gauge("profiler.overhead_ratio").set(1.03);
        let h = metrics.histogram("span.analyzer.kmeans");
        h.record(900);
        h.record(1500);
        h.record(2100);
        metrics.snapshot()
    }

    #[test]
    fn json_export_is_well_formed_and_complete() {
        let json = to_json(&sample());
        assert!(json.contains("\"profiler.windows_sealed\": 12"));
        assert!(json.contains("\"profiler.overhead_ratio\": 1.03"));
        assert!(json.contains("\"span.analyzer.kmeans\""));
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"sum\": 4500"));
        // Balanced braces as a cheap well-formedness check; the CLI
        // integration test parses it with a real JSON parser.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let json = to_json(&MetricsSnapshot::default());
        assert!(json.contains("\"counters\": {}"));
        assert_eq!(to_prometheus(&MetricsSnapshot::default()), "");
    }

    #[test]
    fn prometheus_export_expands_histograms_cumulatively() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE tpupoint_profiler_windows_sealed counter"));
        assert!(text.contains("tpupoint_profiler_windows_sealed 12"));
        assert!(text.contains("# TYPE tpupoint_profiler_overhead_ratio gauge"));
        assert!(text.contains("# TYPE tpupoint_span_analyzer_kmeans histogram"));
        // 900 falls in [512, 1024), 1500 and 2100 in the next two.
        assert!(text.contains("tpupoint_span_analyzer_kmeans_bucket{le=\"1023\"} 1"));
        assert!(text.contains("tpupoint_span_analyzer_kmeans_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tpupoint_span_analyzer_kmeans_sum 4500"));
        assert!(text.contains("tpupoint_span_analyzer_kmeans_count 3"));
    }
}
