//! The span-based self-tracer.
//!
//! A [`SpanGuard`] times a scope. Every finished span feeds the global
//! metrics registry (histogram `span.<name>`, in microseconds) so
//! aggregate timings are always available; when the [`Tracer`] is
//! enabled the span is additionally kept as an event and can be exported
//! as Chrome-tracing JSON (`chrome://tracing`, Perfetto).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The tid every thread reports until it registers a lane of its own.
pub const MAIN_TID: u64 = 1;

/// Next tid handed out by [`register_thread_lane`].
static NEXT_TID: AtomicU64 = AtomicU64::new(MAIN_TID + 1);

thread_local! {
    /// The Chrome-trace tid spans from this thread are attributed to.
    static CURRENT_TID: Cell<u64> = const { Cell::new(MAIN_TID) };
}

/// Registers the calling thread as its own span lane in the Chrome trace:
/// allocates a fresh tid, attributes every subsequent span from this
/// thread to it, and names the lane `label` via a `thread_name` metadata
/// event in the export. Returns the tid (idempotent per thread: a second
/// call keeps the first tid and only updates the label).
pub fn register_thread_lane(label: &str) -> u64 {
    let tid = CURRENT_TID.with(|cell| {
        if cell.get() == MAIN_TID {
            cell.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        cell.get()
    });
    crate::tracer().name_lane(tid, label);
    tid
}

/// The tid spans from the calling thread are attributed to.
pub fn current_tid() -> u64 {
    CURRENT_TID.with(Cell::get)
}

/// A span argument value; rendered into the trace's `args` object.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Floating-point argument.
    F64(f64),
    /// String argument.
    Str(String),
    /// Boolean argument.
    Bool(bool),
}

macro_rules! arg_from {
    ($($t:ty => $variant:ident via $conv:expr),* $(,)?) => {$(
        impl From<$t> for ArgValue {
            fn from(v: $t) -> ArgValue {
                #[allow(clippy::redundant_closure_call)]
                ArgValue::$variant(($conv)(v))
            }
        }
    )*};
}
arg_from! {
    u64 => U64 via |v| v,
    u32 => U64 via u64::from,
    usize => U64 via |v| v as u64,
    i64 => I64 via |v| v,
    i32 => I64 via i64::from,
    f64 => F64 via |v| v,
    bool => Bool via |v| v,
    &str => Str via str::to_owned,
    String => Str via |v| v,
}

impl ArgValue {
    fn to_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::I64(v) => v.to_string(),
            ArgValue::F64(v) if v.is_finite() => v.to_string(),
            ArgValue::F64(_) => "null".to_owned(),
            ArgValue::Bool(v) => v.to_string(),
            ArgValue::Str(s) => json_string(s),
        }
    }
}

/// One completed span, in the vocabulary of the Chrome tracing format.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name, e.g. `analyzer.kmeans`.
    pub name: &'static str,
    /// Microseconds since the tracer was created.
    pub ts_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Lane of the recording thread ([`MAIN_TID`] unless the thread
    /// called [`register_thread_lane`]).
    pub tid: u64,
    /// Key/value arguments attached at the span site.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl SpanEvent {
    /// Category shown in the trace viewer: the name's first
    /// dot-separated segment (`analyzer.kmeans` → `analyzer`).
    pub fn category(&self) -> &'static str {
        self.name.split('.').next().unwrap_or(self.name)
    }
}

/// Collects spans while enabled; exports them as Chrome-tracing JSON.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    events: Mutex<Vec<SpanEvent>>,
    /// `(tid, label)` pairs for named lanes, in registration order.
    lanes: Mutex<Vec<(u64, String)>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh, disabled tracer.
    pub fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            lanes: Mutex::new(Vec::new()),
        }
    }

    /// Names (or renames) the lane `tid` for the Chrome export.
    pub fn name_lane(&self, tid: u64, label: &str) {
        let mut lanes = self.lanes.lock().expect("lane table");
        match lanes.iter_mut().find(|(t, _)| *t == tid) {
            Some((_, existing)) => *existing = label.to_owned(),
            None => lanes.push((tid, label.to_owned())),
        }
    }

    /// Starts collecting span events.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops collecting. Already collected events are retained.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans are currently collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Removes and returns all collected events.
    pub fn drain(&self) -> Vec<SpanEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace buffer"))
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace buffer").len()
    }

    /// True when no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, event: SpanEvent) {
        self.events.lock().expect("trace buffer").push(event);
    }

    /// Renders the collected events (without draining them) as a Chrome
    /// tracing document: `{"displayTimeUnit": "ms", "traceEvents": [..]}`
    /// with one complete (`"ph": "X"`) event per span.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events.lock().expect("trace buffer");
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{MAIN_TID},\
             \"args\":{{\"name\":\"main\"}}}}"
        ));
        for (tid, label) in self.lanes.lock().expect("lane table").iter() {
            out.push_str(&format!(
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                json_string(label)
            ));
        }
        for event in events.iter() {
            out.push(',');
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{},\"dur\":{}",
                json_string(event.name),
                json_string(event.category()),
                event.tid,
                event.ts_us,
                event.dur_us,
            ));
            if !event.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (key, value)) in event.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_string(key));
                    out.push(':');
                    out.push_str(&value.to_json());
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Active span; created by the [`crate::span!`] macro. Records on drop.
pub struct SpanGuard {
    name: &'static str,
    args: Vec<(&'static str, ArgValue)>,
    start: Instant,
}

impl SpanGuard {
    /// Starts a span. Prefer the [`crate::span!`] macro.
    pub fn enter(name: &'static str, args: Vec<(&'static str, ArgValue)>) -> SpanGuard {
        SpanGuard {
            name,
            args,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur = self.start.elapsed();
        let dur_us = dur.as_micros().min(u128::from(u64::MAX)) as u64;
        crate::metrics()
            .histogram(&format!("span.{}", self.name))
            .record(dur_us);
        let tracer = crate::tracer();
        if tracer.is_enabled() {
            let ts_us = self
                .start
                .duration_since(tracer.epoch)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            tracer.push(SpanEvent {
                name: self.name,
                ts_us,
                dur_us,
                tid: current_tid(),
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_has_complete_events_with_args() {
        let tracer = Tracer::new();
        tracer.enable();
        tracer.push(SpanEvent {
            name: "analyzer.kmeans",
            ts_us: 10,
            dur_us: 250,
            tid: MAIN_TID,
            args: vec![
                ("k", ArgValue::U64(4)),
                ("label", ArgValue::Str("a\"b".into())),
            ],
        });
        tracer.push(SpanEvent {
            name: "profiler.seal",
            ts_us: 400,
            dur_us: 3,
            tid: 7,
            args: vec![],
        });
        let json = tracer.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"analyzer.kmeans\""));
        assert!(json.contains("\"cat\":\"analyzer\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"k\":4,\"label\":\"a\\\"b\"}"));
        assert!(json.contains("\"cat\":\"profiler\""));
        // Each span carries its recording thread's lane.
        assert!(json.contains("\"tid\":7"));
        // The main lane is always named.
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("{\"name\":\"main\"}"));
    }

    #[test]
    fn registered_lanes_get_named_metadata_and_fresh_tids() {
        let handle = std::thread::spawn(|| {
            let first = register_thread_lane("worker-a");
            let second = register_thread_lane("worker-a-renamed");
            assert_eq!(first, second, "registration is idempotent per thread");
            assert_eq!(current_tid(), first);
            first
        });
        let tid = handle.join().expect("lane thread");
        assert!(tid > MAIN_TID);
        assert_eq!(current_tid(), MAIN_TID, "main thread lane is untouched");
        let json = crate::tracer().to_chrome_json();
        assert!(json.contains(&format!("\"tid\":{tid}")), "{json}");
        assert!(json.contains("worker-a-renamed"), "{json}");
        assert!(!json.contains("\"worker-a\""), "rename replaces the label");
    }

    #[test]
    fn disabled_tracer_collects_nothing_but_metrics_still_record() {
        // Uses the crate-global tracer/metrics: the tracer starts
        // disabled, so the span must not leak into the event buffer.
        let before_len = crate::tracer().len();
        {
            let _span = crate::span!("test.disabled_span");
        }
        assert_eq!(crate::tracer().len(), before_len);
        let snap = crate::metrics().snapshot();
        assert!(snap.histograms.contains_key("span.test.disabled_span"));
    }

    #[test]
    fn drain_empties_the_buffer() {
        let tracer = Tracer::new();
        tracer.push(SpanEvent {
            name: "x",
            ts_us: 0,
            dur_us: 1,
            tid: MAIN_TID,
            args: vec![],
        });
        assert_eq!(tracer.len(), 1);
        assert_eq!(tracer.drain().len(), 1);
        assert!(tracer.is_empty());
    }

    #[test]
    fn arg_conversions_cover_common_types() {
        assert_eq!(ArgValue::from(3u32), ArgValue::U64(3));
        assert_eq!(ArgValue::from(-2i32), ArgValue::I64(-2));
        assert_eq!(ArgValue::from(1.5), ArgValue::F64(1.5));
        assert_eq!(ArgValue::from(true), ArgValue::Bool(true));
        assert_eq!(ArgValue::from("s"), ArgValue::Str("s".into()));
        assert_eq!(ArgValue::F64(f64::NAN).to_json(), "null");
    }
}
