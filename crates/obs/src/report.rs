//! [`ObsReport`]: the maintainer-facing summary of a metrics snapshot.
//!
//! Collapses the raw registry into the four questions the ISSUE-level
//! workflow keeps asking: where did the wall time go (per stage), what
//! did profiling itself cost (overhead ratio), did the profiler's window
//! pipeline stay healthy, and how do the phase-detection algorithms
//! compare in runtime.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;

/// Wall time attributed to one instrumentation stage (the first
/// dot-separated segment of a span name: `analyzer`, `profiler`, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct StageTime {
    /// Stage name.
    pub name: String,
    /// Total wall time across the stage's spans, microseconds.
    pub total_us: u64,
    /// Number of spans recorded for the stage.
    pub spans: u64,
}

/// Runtime of one analyzer algorithm (`span.analyzer.<algorithm>`).
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmRuntime {
    /// Algorithm name: `kmeans`, `dbscan`, `ols`, `pca`, ...
    pub name: String,
    /// Number of recorded runs.
    pub runs: u64,
    /// Total wall time, microseconds.
    pub total_us: u64,
    /// Mean wall time per run, microseconds.
    pub mean_us: f64,
}

/// Results of the window-coverage audit, when one actually ran. Kept
/// separate from [`WindowHealth`] so a run where the audit never executed
/// is distinguishable from one where it ran and found nothing — the
/// `audit.unobserved_fraction` gauge is the sentinel: it is published
/// whenever the audit runs, even when the answer is `0.0`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAudit {
    /// Coverage gaps found by the audit.
    pub gaps: u64,
    /// Window overlaps found by the audit.
    pub overlaps: u64,
    /// Fraction of the profiled span not covered by any window.
    pub unobserved_fraction: f64,
}

/// Health of the profiler's window pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowHealth {
    /// Windows sealed and kept.
    pub sealed: u64,
    /// Windows lost to simulated collection faults.
    pub dropped: u64,
    /// Events recorded into kept windows.
    pub events_recorded: u64,
    /// Events lost with dropped windows.
    pub events_lost: u64,
    /// Coverage-audit results; `None` when the audit never ran.
    pub audit: Option<WindowAudit>,
    /// Whether the pipeline lost nothing and the audit (if it ran) found
    /// no gaps or overlaps. A run without an audit can still be `clean`
    /// on the loss counters alone — the render makes the missing audit
    /// explicit instead of silently vouching for coverage.
    pub clean: bool,
}

/// Live phase structure from the streaming analyzer, when one ran. Kept
/// as an `Option` on [`ObsReport`] following the [`WindowAudit`]
/// convention: the `analyzer.phase_stability` gauge is the sentinel — it
/// is published on every streaming update, even when the score is `0.0`,
/// so its absence means the streaming analyzer never ran rather than
/// that it ran and found nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseHealth {
    /// Phases with at least one assigned step.
    pub phases: u64,
    /// Fraction of sampled steps whose assignment survived the latest
    /// update unchanged.
    pub stability: f64,
    /// Consecutive updates at or above the stability threshold.
    pub stable_windows: u64,
    /// Step of the most recent phase transition; `None` when the
    /// timeline has no transition yet.
    pub last_transition_step: Option<u64>,
}

/// Health of the laned (sharded) simulation engine, when one ran. Kept as
/// an `Option` on [`ObsReport`] following the [`PhaseHealth`] convention:
/// the `sim.sync_barriers` counter is the sentinel — the laned engine
/// publishes it after every run, even a run short enough to need a single
/// barrier, so its absence means the serial engine ran instead.
#[derive(Debug, Clone, PartialEq)]
pub struct SimHealth {
    /// Conservative time-window sync barriers executed.
    pub barriers: u64,
    /// Signals delivered per lane, indexed by lane id (`sim.lane_events.<L>`).
    pub lane_events: Vec<u64>,
    /// Simulated time lanes overshot the conservative horizon when batches
    /// were cut short, microseconds.
    pub lookahead_stall_us: u64,
}

/// Health of the binary segment store, when one ran. Kept as an `Option`
/// on [`ObsReport`] following the [`SimHealth`] convention: the
/// `store.segments` gauge is the sentinel — the binary store publishes it
/// on every rotation/compaction/retention pass and on a registry rebind
/// (any binary run that stored records has published it by seal time), so
/// its absence means the JSONL store (which has no segment tier) ran
/// instead. Publication is deferred past construction so a fleet job's
/// store never registers the sentinel with the global registry before
/// rebinding to its own.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreFormatHealth {
    /// Sealed segments currently listed in the manifest.
    pub segments: u64,
    /// Background/seal-time compaction merges completed.
    pub compactions: u64,
    /// Bytes of disk freed by maintenance: compaction merges (net) plus
    /// retention-retired segments.
    pub bytes_reclaimed: u64,
    /// Bytes of encoded frames written to segment files.
    pub bytes_written: u64,
    /// Acknowledged records retired (accounted, not lost) by the
    /// per-tenant retention budget.
    pub records_retired: u64,
}

/// Health of the profiler's record-store layer (retry/spill resilience).
#[derive(Debug, Clone, PartialEq)]
pub struct StoreHealth {
    /// Store operations that failed after exhausting retries (surfaced to
    /// the profile) plus transient failures the retry layer absorbed.
    pub errors: u64,
    /// Retry attempts performed by the resilience layer.
    pub retries: u64,
    /// Records spilled to the in-memory fallback queue.
    pub records_spilled: u64,
    /// Spill-queue depth at snapshot time; nonzero means records were
    /// still awaiting delivery when the run ended.
    pub spill_depth: u64,
    /// Oldest spilled records shed when the bounded spill queue hit its
    /// high-water mark during a sustained outage.
    pub records_shed: u64,
    /// Total simulated retry backoff, microseconds.
    pub backoff_us: u64,
    /// True when nothing is pending delivery or lost: no faults occurred,
    /// or the retry/spill layer absorbed all of them without shedding.
    pub lossless: bool,
}

/// Health of the pipelined (off-critical-path) seal queue.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineHealth {
    /// Store operations drained by pipeline workers.
    pub ops_drained: u64,
    /// Total time spent applying drained operations, microseconds.
    pub drain_us: u64,
    /// Mean per-operation drain latency, microseconds.
    pub mean_latency_us: f64,
    /// Times the simulation thread blocked on the queue's high-water mark.
    pub backpressure_waits: u64,
    /// Seal-queue depth at snapshot time; nonzero means the snapshot was
    /// taken before the drain barrier.
    pub queue_depth: u64,
}

/// Summary computed from a [`MetricsSnapshot`]; see the module docs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// Per-stage wall time, sorted by descending total.
    pub stages: Vec<StageTime>,
    /// Per-algorithm analyzer runtimes, sorted by descending total.
    pub algorithms: Vec<AlgorithmRuntime>,
    /// Instrumented-to-uninstrumented wall-clock ratio for the profiled
    /// job, when the profiler recorded one (gauge
    /// `profiler.overhead_ratio`).
    pub overhead_ratio: Option<f64>,
    /// Whether the overhead ratio was *measured* against a paired
    /// uninstrumented twin run (gauge `profiler.overhead_measured`)
    /// rather than modeled as `1 + profiling_overhead_frac`.
    pub overhead_measured: bool,
    /// Streaming-analyzer phase structure, when one ran.
    pub phase_health: Option<PhaseHealth>,
    /// Laned-simulation-engine health, when the laned engine ran.
    pub sim_health: Option<SimHealth>,
    /// Window-pipeline health, when profiler counters are present.
    pub window_health: Option<WindowHealth>,
    /// Record-store resilience health, when store metrics are present.
    pub store_health: Option<StoreHealth>,
    /// Binary segment-store health, when the binary format ran.
    pub store_format: Option<StoreFormatHealth>,
    /// Seal-pipeline health, when the pipelined profiler ran.
    pub pipeline_health: Option<PipelineHealth>,
}

impl ObsReport {
    /// Builds the report from a snapshot.
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> ObsReport {
        let mut stages: BTreeMap<&str, StageTime> = BTreeMap::new();
        let mut algorithms = Vec::new();
        for (name, hist) in &snapshot.histograms {
            let Some(span_name) = name.strip_prefix("span.") else {
                continue;
            };
            let stage = span_name.split('.').next().unwrap_or(span_name);
            let entry = stages.entry(stage).or_insert_with(|| StageTime {
                name: stage.to_owned(),
                total_us: 0,
                spans: 0,
            });
            entry.total_us += hist.sum;
            entry.spans += hist.count;
            if let Some(algorithm) = span_name.strip_prefix("analyzer.") {
                algorithms.push(AlgorithmRuntime {
                    name: algorithm.to_owned(),
                    runs: hist.count,
                    total_us: hist.sum,
                    mean_us: hist.mean(),
                });
            }
        }
        let mut stages: Vec<StageTime> = stages.into_values().collect();
        stages.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
        algorithms.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));

        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let gauge = |name: &str| snapshot.gauges.get(name).copied();
        let has_profiler_counters = snapshot
            .counters
            .keys()
            .any(|name| name.starts_with("profiler."));
        let window_health = has_profiler_counters.then(|| {
            let dropped = counter("profiler.windows_dropped");
            let events_lost = counter("profiler.events_lost");
            // The audit publishes `audit.unobserved_fraction` whenever it
            // runs (even at 0.0), so its absence means "audit never ran"
            // rather than "audit found nothing".
            let audit = gauge("audit.unobserved_fraction").map(|unobserved_fraction| WindowAudit {
                gaps: gauge("audit.gaps").unwrap_or(0.0) as u64,
                overlaps: gauge("audit.overlaps").unwrap_or(0.0) as u64,
                unobserved_fraction,
            });
            let audit_clean = audit
                .as_ref()
                .is_none_or(|a| a.gaps == 0 && a.overlaps == 0);
            WindowHealth {
                sealed: counter("profiler.windows_sealed"),
                dropped,
                events_recorded: counter("profiler.events_recorded"),
                events_lost,
                audit,
                clean: dropped == 0 && events_lost == 0 && audit_clean,
            }
        });

        let has_store_metrics = snapshot
            .counters
            .keys()
            .chain(snapshot.gauges.keys())
            .any(|name| name.starts_with("profiler.store_") || name == "profiler.records_spilled");
        let store_health = has_store_metrics.then(|| {
            let errors = counter("profiler.store_errors");
            let spill_depth = gauge("profiler.store_spill_depth").unwrap_or(0.0) as u64;
            let records_shed = counter("profiler.records_shed");
            StoreHealth {
                errors,
                retries: counter("profiler.store_retries"),
                records_spilled: counter("profiler.records_spilled"),
                spill_depth,
                records_shed,
                backoff_us: snapshot
                    .histograms
                    .get("profiler.store_backoff_us")
                    .map_or(0, |h| h.sum),
                lossless: spill_depth == 0 && records_shed == 0,
            }
        });

        // `store.segments` is published by the binary segment store on
        // every rotation/compaction/retention pass and on a registry
        // rebind — by seal time for any binary run that stored records —
        // so its absence means the JSONL store ran: the same sentinel
        // convention as `sim.sync_barriers`.
        let store_format = gauge("store.segments").map(|segments| StoreFormatHealth {
            segments: segments as u64,
            compactions: counter("store.compactions"),
            bytes_reclaimed: counter("store.bytes_reclaimed"),
            bytes_written: counter("store.bytes_written"),
            records_retired: counter("store.records_retired"),
        });

        let seal_latency = snapshot.histograms.get("profiler.seal_latency_us");
        let pipeline_health = seal_latency.map(|latency| PipelineHealth {
            ops_drained: latency.count,
            drain_us: latency.sum,
            mean_latency_us: latency.mean(),
            backpressure_waits: counter("profiler.seal_backpressure_waits"),
            queue_depth: gauge("profiler.seal_queue_depth").unwrap_or(0.0) as u64,
        });

        // `sim.sync_barriers` is published after every laned run (any run
        // executes at least one barrier), so its absence means the serial
        // engine ran — the same sentinel convention as the phase gauges.
        let sim_health = snapshot.counters.get("sim.sync_barriers").map(|&barriers| {
            let mut lanes: Vec<(u64, u64)> = snapshot
                .counters
                .iter()
                .filter_map(|(name, &events)| {
                    let lane = name.strip_prefix("sim.lane_events.")?;
                    lane.parse::<u64>().ok().map(|lane| (lane, events))
                })
                .collect();
            lanes.sort_unstable();
            SimHealth {
                barriers,
                lane_events: lanes.into_iter().map(|(_, events)| events).collect(),
                lookahead_stall_us: counter("sim.lookahead_stall_us"),
            }
        });

        // `analyzer.phase_stability` is published on every streaming
        // update (even at 0.0), so its absence means "streaming analyzer
        // never ran" — the same sentinel convention as the window audit.
        let phase_health = gauge("analyzer.phase_stability").map(|stability| PhaseHealth {
            phases: gauge("analyzer.phase_count").unwrap_or(0.0) as u64,
            stability,
            stable_windows: gauge("analyzer.stable_windows").unwrap_or(0.0) as u64,
            last_transition_step: gauge("analyzer.last_transition_step").map(|s| s as u64),
        });

        ObsReport {
            stages,
            algorithms,
            overhead_ratio: gauge("profiler.overhead_ratio"),
            overhead_measured: gauge("profiler.overhead_measured").is_some_and(|v| v > 0.0),
            phase_health,
            sim_health,
            window_health,
            store_health,
            store_format,
            pipeline_health,
        }
    }

    /// Human-readable rendering, the `tpupoint obs-report` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== observability report ==\n");

        out.push_str("\nper-stage wall time:\n");
        if self.stages.is_empty() {
            out.push_str("  (no spans recorded)\n");
        }
        for stage in &self.stages {
            let _ = writeln!(
                out,
                "  {:<12} {:>12}  ({} spans)",
                stage.name,
                format_us(stage.total_us),
                stage.spans
            );
        }

        out.push_str("\nanalyzer algorithm runtimes:\n");
        if self.algorithms.is_empty() {
            out.push_str("  (no analyzer spans recorded)\n");
        }
        for algorithm in &self.algorithms {
            let _ = writeln!(
                out,
                "  {:<12} {:>12} total over {} runs ({}/run)",
                algorithm.name,
                format_us(algorithm.total_us),
                algorithm.runs,
                format_us(algorithm.mean_us.round() as u64)
            );
        }

        match self.overhead_ratio {
            Some(ratio) => {
                let source = if self.overhead_measured {
                    "measured against an uninstrumented twin"
                } else {
                    "modeled"
                };
                let _ = writeln!(
                    out,
                    "\nprofiler overhead: {:.2}% (instrumented/uninstrumented wall ratio {ratio:.4}, {source})",
                    (ratio - 1.0) * 100.0
                );
            }
            None => out.push_str("\nprofiler overhead: (not measured)\n"),
        }

        match &self.phase_health {
            Some(phase) => {
                let last = match phase.last_transition_step {
                    Some(step) => format!("last transition @ step {step}"),
                    None => "no transitions".to_owned(),
                };
                let _ = writeln!(
                    out,
                    "streaming analyzer: {} phases, stability {:.2} (stable for {} windows), {last}",
                    phase.phases, phase.stability, phase.stable_windows
                );
            }
            None => out.push_str("streaming analyzer: not run\n"),
        }

        match &self.sim_health {
            Some(sim) => {
                let per_lane: Vec<String> = sim
                    .lane_events
                    .iter()
                    .map(|events| events.to_string())
                    .collect();
                let _ = writeln!(
                    out,
                    "laned engine: {} lanes [{} events], {} sync barriers, {} lookahead stall",
                    sim.lane_events.len(),
                    per_lane.join("/"),
                    sim.barriers,
                    format_us(sim.lookahead_stall_us)
                );
            }
            None => out.push_str("laned engine: not run\n"),
        }

        match &self.window_health {
            Some(health) => {
                let _ = writeln!(
                    out,
                    "\nwindow pipeline: {} sealed, {} dropped, {} events recorded, {} lost",
                    health.sealed, health.dropped, health.events_recorded, health.events_lost
                );
                match &health.audit {
                    Some(audit) => {
                        let _ = writeln!(
                            out,
                            "window audit:    {} gaps, {} overlaps, {:.2}% unobserved -> {}",
                            audit.gaps,
                            audit.overlaps,
                            audit.unobserved_fraction * 100.0,
                            if health.clean { "clean" } else { "NOT CLEAN" }
                        );
                    }
                    None => out.push_str("window audit:    not run\n"),
                }
            }
            None => out.push_str("\nwindow pipeline: (no profiler activity)\n"),
        }

        match &self.store_health {
            Some(store) => {
                let _ = writeln!(
                    out,
                    "record store:    {} errors, {} retries, {} spilled (pending {}, shed {}) -> {}",
                    store.errors,
                    store.retries,
                    store.records_spilled,
                    store.spill_depth,
                    store.records_shed,
                    if store.lossless {
                        "lossless"
                    } else {
                        "RECORDS LOST OR PENDING"
                    }
                );
                if store.backoff_us > 0 {
                    let _ = writeln!(
                        out,
                        "retry backoff:   {} total (simulated)",
                        format_us(store.backoff_us)
                    );
                }
            }
            None => out.push_str("record store:    (no store activity)\n"),
        }

        if let Some(format) = &self.store_format {
            let _ = writeln!(
                out,
                "segment store:   {} segments ({} written), {} compactions, {} reclaimed, {} records retired",
                format.segments,
                format_bytes(format.bytes_written),
                format.compactions,
                format_bytes(format.bytes_reclaimed),
                format.records_retired
            );
        }

        if let Some(pipeline) = &self.pipeline_health {
            let _ = writeln!(
                out,
                "seal pipeline:   {} ops drained in {} ({}/op), {} backpressure waits, {} queued",
                pipeline.ops_drained,
                format_us(pipeline.drain_us),
                format_us(pipeline.mean_latency_us.round() as u64),
                pipeline.backpressure_waits,
                pipeline.queue_depth
            );
        }
        out
    }
}

fn format_bytes(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{:.2}MiB", bytes as f64 / (1024.0 * 1024.0))
    } else if bytes >= 1024 {
        format!("{:.2}KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes}B")
    }
}

fn format_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.3}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    fn instrumented_snapshot() -> MetricsSnapshot {
        let metrics = Metrics::new();
        metrics.histogram("span.analyzer.kmeans").record(4000);
        metrics.histogram("span.analyzer.kmeans").record(6000);
        metrics.histogram("span.analyzer.dbscan").record(20_000);
        metrics.histogram("span.analyzer.ols").record(500);
        metrics.histogram("span.profiler.seal_window").record(50);
        metrics.histogram("span.runtime.step").record(100);
        metrics.counter("profiler.windows_sealed").add(8);
        metrics.counter("profiler.windows_dropped").add(1);
        metrics.counter("profiler.events_recorded").add(4000);
        metrics.counter("profiler.events_lost").add(120);
        metrics.gauge("profiler.overhead_ratio").set(1.03);
        metrics.gauge("audit.gaps").set(1.0);
        metrics.gauge("audit.unobserved_fraction").set(0.05);
        metrics.snapshot()
    }

    #[test]
    fn stages_aggregate_and_sort_by_total_time() {
        let report = ObsReport::from_snapshot(&instrumented_snapshot());
        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["analyzer", "runtime", "profiler"]);
        let analyzer = &report.stages[0];
        assert_eq!(analyzer.total_us, 30_500);
        assert_eq!(analyzer.spans, 4);
    }

    #[test]
    fn algorithms_report_runs_and_means() {
        let report = ObsReport::from_snapshot(&instrumented_snapshot());
        let names: Vec<&str> = report.algorithms.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["dbscan", "kmeans", "ols"]);
        let kmeans = report
            .algorithms
            .iter()
            .find(|a| a.name == "kmeans")
            .unwrap();
        assert_eq!(kmeans.runs, 2);
        assert_eq!(kmeans.total_us, 10_000);
        assert!((kmeans.mean_us - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn window_health_reflects_drops_and_audit_gauges() {
        let report = ObsReport::from_snapshot(&instrumented_snapshot());
        let health = report.window_health.expect("profiler counters present");
        assert_eq!(health.sealed, 8);
        assert_eq!(health.dropped, 1);
        assert_eq!(health.events_lost, 120);
        let audit = health.audit.as_ref().expect("audit gauges present");
        assert_eq!(audit.gaps, 1);
        assert!((audit.unobserved_fraction - 0.05).abs() < 1e-12);
        assert!(!health.clean);
        assert_eq!(report.overhead_ratio, Some(1.03));
    }

    #[test]
    fn missing_audit_gauge_reports_not_run_instead_of_clean_zero() {
        // Profiler counters present, but the window audit never executed:
        // `audit.unobserved_fraction` was never published. The report must
        // say so instead of claiming a perfect 0.00%-unobserved audit.
        let metrics = Metrics::new();
        metrics.counter("profiler.windows_sealed").add(4);
        metrics.counter("profiler.events_recorded").add(900);
        let report = ObsReport::from_snapshot(&metrics.snapshot());
        let health = report
            .window_health
            .as_ref()
            .expect("profiler counters present");
        assert!(health.audit.is_none(), "no audit gauges -> no audit");
        assert!(health.clean, "loss counters alone are clean");
        let text = report.render();
        assert!(text.contains("window audit:    not run"), "{text}");
        assert!(!text.contains("unobserved"), "{text}");

        // Whereas an audit that ran and measured exactly 0.0 still prints
        // its figures.
        metrics.gauge("audit.unobserved_fraction").set(0.0);
        let report = ObsReport::from_snapshot(&metrics.snapshot());
        let health = report
            .window_health
            .as_ref()
            .expect("profiler counters present");
        let audit = health.audit.as_ref().expect("audit ran");
        assert_eq!(audit.unobserved_fraction, 0.0);
        assert!(report.render().contains("0.00% unobserved -> clean"));
    }

    #[test]
    fn missing_phase_gauges_report_not_run() {
        let report = ObsReport::from_snapshot(&instrumented_snapshot());
        assert!(report.phase_health.is_none());
        let text = report.render();
        assert!(text.contains("streaming analyzer: not run"), "{text}");
    }

    #[test]
    fn phase_health_reflects_streaming_gauges() {
        let metrics = Metrics::new();
        metrics.gauge("analyzer.phase_stability").set(0.97);
        metrics.gauge("analyzer.phase_count").set(3.0);
        metrics.gauge("analyzer.stable_windows").set(4.0);
        metrics.gauge("analyzer.last_transition_step").set(120.0);
        let report = ObsReport::from_snapshot(&metrics.snapshot());
        let phase = report
            .phase_health
            .as_ref()
            .expect("stability gauge present");
        assert_eq!(phase.phases, 3);
        assert!((phase.stability - 0.97).abs() < 1e-12);
        assert_eq!(phase.stable_windows, 4);
        assert_eq!(phase.last_transition_step, Some(120));
        let text = report.render();
        assert!(
            text.contains("streaming analyzer: 3 phases, stability 0.97"),
            "{text}"
        );
        assert!(text.contains("last transition @ step 120"), "{text}");
    }

    #[test]
    fn missing_sim_counters_report_laned_engine_not_run() {
        let report = ObsReport::from_snapshot(&instrumented_snapshot());
        assert!(report.sim_health.is_none());
        let text = report.render();
        assert!(text.contains("laned engine: not run"), "{text}");
    }

    #[test]
    fn sim_health_reflects_lane_counters() {
        let metrics = Metrics::new();
        metrics.counter("sim.sync_barriers").add(40);
        metrics.counter("sim.lookahead_stall_us").add(2_500);
        metrics.counter("sim.lane_events.0").add(120);
        metrics.counter("sim.lane_events.1").add(95);
        let report = ObsReport::from_snapshot(&metrics.snapshot());
        let sim = report.sim_health.as_ref().expect("barrier counter present");
        assert_eq!(sim.barriers, 40);
        assert_eq!(sim.lane_events, vec![120, 95]);
        assert_eq!(sim.lookahead_stall_us, 2_500);
        let text = report.render();
        assert!(
            text.contains("laned engine: 2 lanes [120/95 events], 40 sync barriers"),
            "{text}"
        );
        assert!(text.contains("2.500ms lookahead stall"), "{text}");
    }

    #[test]
    fn phase_health_without_transitions_prints_none() {
        // A streaming run whose timeline never changed label publishes
        // stability but no `analyzer.last_transition_step` gauge.
        let metrics = Metrics::new();
        metrics.gauge("analyzer.phase_stability").set(1.0);
        metrics.gauge("analyzer.phase_count").set(1.0);
        let report = ObsReport::from_snapshot(&metrics.snapshot());
        let phase = report.phase_health.as_ref().expect("ran");
        assert_eq!(phase.last_transition_step, None);
        assert!(report.render().contains("no transitions"));
    }

    #[test]
    fn overhead_source_distinguishes_measured_from_modeled() {
        let metrics = Metrics::new();
        metrics.gauge("profiler.overhead_ratio").set(1.021);
        let modeled = ObsReport::from_snapshot(&metrics.snapshot());
        assert!(!modeled.overhead_measured);
        assert!(modeled.render().contains("ratio 1.0210, modeled"));
        metrics.gauge("profiler.overhead_measured").set(1.0);
        let measured = ObsReport::from_snapshot(&metrics.snapshot());
        assert!(measured.overhead_measured);
        assert!(
            measured
                .render()
                .contains("ratio 1.0210, measured against an uninstrumented twin"),
            "{}",
            measured.render()
        );
    }

    #[test]
    fn empty_snapshot_renders_placeholders() {
        let report = ObsReport::from_snapshot(&MetricsSnapshot::default());
        assert!(report.stages.is_empty());
        assert!(report.window_health.is_none());
        assert!(report.store_health.is_none());
        let text = report.render();
        assert!(text.contains("(no spans recorded)"));
        assert!(text.contains("(not measured)"));
        assert!(text.contains("(no profiler activity)"));
        assert!(text.contains("(no store activity)"));
    }

    #[test]
    fn store_health_reflects_resilience_counters() {
        let metrics = Metrics::new();
        metrics.counter("profiler.store_errors").add(4);
        metrics.counter("profiler.store_retries").add(6);
        metrics.counter("profiler.records_spilled").add(2);
        metrics.gauge("profiler.store_spill_depth").set(0.0);
        metrics.histogram("profiler.store_backoff_us").record(1_500);
        metrics.histogram("profiler.store_backoff_us").record(2_500);
        let report = ObsReport::from_snapshot(&metrics.snapshot());
        let store = report.store_health.as_ref().expect("store metrics present");
        assert_eq!(store.errors, 4);
        assert_eq!(store.retries, 6);
        assert_eq!(store.records_spilled, 2);
        assert_eq!(store.spill_depth, 0);
        assert_eq!(store.backoff_us, 4_000);
        assert!(store.lossless, "nothing left pending");
        let text = report.render();
        assert!(text.contains("4 errors, 6 retries, 2 spilled"), "{text}");
        assert!(text.contains("lossless"), "{text}");
        assert!(text.contains("retry backoff:   4.000ms"), "{text}");
    }

    #[test]
    fn pending_spilled_records_flag_the_store_unhealthy() {
        let metrics = Metrics::new();
        metrics.counter("profiler.store_errors").add(9);
        metrics.counter("profiler.records_spilled").add(3);
        metrics.gauge("profiler.store_spill_depth").set(3.0);
        let report = ObsReport::from_snapshot(&metrics.snapshot());
        let store = report.store_health.as_ref().expect("store metrics present");
        assert!(!store.lossless);
        assert!(report.render().contains("RECORDS LOST OR PENDING"));
    }

    #[test]
    fn shed_records_flag_the_store_unhealthy() {
        let metrics = Metrics::new();
        metrics.counter("profiler.records_spilled").add(8);
        metrics.counter("profiler.records_shed").add(5);
        metrics.gauge("profiler.store_spill_depth").set(0.0);
        let report = ObsReport::from_snapshot(&metrics.snapshot());
        let store = report.store_health.as_ref().expect("store metrics present");
        assert_eq!(store.records_shed, 5);
        assert!(!store.lossless, "shed records are lost records");
        assert!(report.render().contains("shed 5"));
    }

    #[test]
    fn store_format_health_reflects_segment_metrics() {
        let metrics = Metrics::new();
        metrics.gauge("store.segments").set(5.0);
        metrics.counter("store.compactions").add(3);
        metrics
            .counter("store.bytes_reclaimed")
            .add(2 * 1024 * 1024);
        metrics.counter("store.bytes_written").add(9 * 1024);
        metrics.counter("store.records_retired").add(120);
        let report = ObsReport::from_snapshot(&metrics.snapshot());
        let format = report
            .store_format
            .as_ref()
            .expect("segments gauge present");
        assert_eq!(format.segments, 5);
        assert_eq!(format.compactions, 3);
        assert_eq!(format.bytes_reclaimed, 2 * 1024 * 1024);
        assert_eq!(format.bytes_written, 9 * 1024);
        assert_eq!(format.records_retired, 120);
        let text = report.render();
        assert!(
            text.contains("segment store:   5 segments (9.00KiB written)"),
            "{text}"
        );
        assert!(
            text.contains("3 compactions, 2.00MiB reclaimed, 120 records retired"),
            "{text}"
        );
    }

    #[test]
    fn store_format_section_is_omitted_without_segment_gauge() {
        // The JSONL store publishes no `store.segments` gauge, so the
        // segment-store section must stay silent instead of printing an
        // all-zero binary tier that never existed.
        let report = ObsReport::from_snapshot(&instrumented_snapshot());
        assert!(report.store_format.is_none());
        assert!(!report.render().contains("segment store"));
    }

    #[test]
    fn pipeline_health_summarizes_seal_queue_metrics() {
        let metrics = Metrics::new();
        metrics.histogram("profiler.seal_latency_us").record(1_000);
        metrics.histogram("profiler.seal_latency_us").record(3_000);
        metrics.counter("profiler.seal_backpressure_waits").add(2);
        metrics.gauge("profiler.seal_queue_depth").set(0.0);
        let report = ObsReport::from_snapshot(&metrics.snapshot());
        let pipeline = report
            .pipeline_health
            .as_ref()
            .expect("seal metrics present");
        assert_eq!(pipeline.ops_drained, 2);
        assert_eq!(pipeline.drain_us, 4_000);
        assert!((pipeline.mean_latency_us - 2_000.0).abs() < 1e-9);
        assert_eq!(pipeline.backpressure_waits, 2);
        assert_eq!(pipeline.queue_depth, 0);
        let text = report.render();
        assert!(text.contains("seal pipeline:   2 ops drained"), "{text}");
        assert!(text.contains("2 backpressure waits"), "{text}");
    }

    #[test]
    fn pipeline_section_is_omitted_without_seal_metrics() {
        let report = ObsReport::from_snapshot(&instrumented_snapshot());
        assert!(report.pipeline_health.is_none());
        assert!(!report.render().contains("seal pipeline"));
    }

    #[test]
    fn render_mentions_each_section() {
        let text = ObsReport::from_snapshot(&instrumented_snapshot()).render();
        assert!(text.contains("per-stage wall time"));
        assert!(text.contains("analyzer"));
        assert!(text.contains("kmeans"));
        assert!(text.contains("profiler overhead: 3.00%"));
        assert!(text.contains("NOT CLEAN"));
        assert!(text.contains("5.00% unobserved"));
    }
}
