//! Self-observability for the TPUPoint reproduction.
//!
//! The paper's central claim is that profiling can be cheap enough to run
//! always-on; this crate lets the reproduction make the same argument
//! about *itself*. It provides three layers, all dependency-free so every
//! other crate can afford to link it:
//!
//! * a metrics registry ([`Metrics`]) of named counters, gauges, and
//!   log-scale histograms behind cheap atomically-updated handles, with
//!   JSON and Prometheus-text exporters;
//! * a span-based self-tracer ([`span!`], [`Tracer`]) that times scopes,
//!   feeds their durations back into the registry, and can export the
//!   collected spans as Chrome-tracing JSON;
//! * a summarizer ([`ObsReport`]) that turns a metrics snapshot into the
//!   numbers a maintainer actually asks for: per-stage wall time,
//!   profiler overhead, window-audit health, and per-algorithm analyzer
//!   runtimes.
//!
//! Instrumented crates use the process-wide registry via [`metrics`] and
//! the process-wide tracer via [`tracer`]; both are no-ops cheap enough
//! to leave enabled (an atomic load when tracing is off, an atomic add
//! per metric update).

mod export;
mod http;
mod metrics;
mod phases;
mod report;
mod trace;

pub use export::{
    prom_escape_help, prom_escape_label, to_json, to_prometheus, to_prometheus_labeled,
    to_prometheus_multi, to_prometheus_multi_ref, LabeledSnapshot, LabeledSnapshotRef,
};
pub use http::{Health, MetricsServer, Request, Response, ServeHooks};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use phases::{PhaseStat, PhaseTransition, PhasesReport};
pub use report::{
    AlgorithmRuntime, ObsReport, PhaseHealth, StageTime, StoreHealth, WindowAudit, WindowHealth,
};
pub use trace::{
    current_tid, register_thread_lane, ArgValue, SpanEvent, SpanGuard, Tracer, MAIN_TID,
};

use std::sync::OnceLock;

static GLOBAL_METRICS: OnceLock<Metrics> = OnceLock::new();
static GLOBAL_TRACER: OnceLock<Tracer> = OnceLock::new();

/// The process-wide metrics registry used by instrumented crates.
pub fn metrics() -> &'static Metrics {
    GLOBAL_METRICS.get_or_init(Metrics::new)
}

/// The process-wide span tracer. Collection is off until
/// [`Tracer::enable`] is called, so untraced runs pay one atomic load
/// per span.
pub fn tracer() -> &'static Tracer {
    GLOBAL_TRACER.get_or_init(Tracer::new)
}

/// Times the enclosing scope.
///
/// Expands to a guard value that must be bound (`let _span = span!(..)`);
/// when the guard drops, the elapsed wall time is recorded into the
/// histogram `span.<name>` of the global registry and, if the global
/// tracer is enabled, appended to the Chrome trace with the given
/// key/value arguments.
///
/// ```
/// use tpupoint_obs::span;
/// {
///     let _span = span!("analyzer.kmeans", k = 4);
///     // ... work ...
/// }
/// let snap = tpupoint_obs::metrics().snapshot();
/// assert_eq!(snap.histograms["span.analyzer.kmeans"].count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::SpanGuard::enter(
            $name,
            ::std::vec![$((stringify!($key), $crate::ArgValue::from($value))),+],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_handles_are_singletons() {
        let a = metrics() as *const Metrics;
        let b = metrics() as *const Metrics;
        assert_eq!(a, b);
        let t1 = tracer() as *const Tracer;
        let t2 = tracer() as *const Tracer;
        assert_eq!(t1, t2);
    }

    #[test]
    fn span_macro_records_into_the_global_registry() {
        {
            let _span = span!("test.lib_span", k = 3, tag = "x");
        }
        let snap = metrics().snapshot();
        let hist = &snap.histograms["span.test.lib_span"];
        assert!(hist.count >= 1);
    }
}
