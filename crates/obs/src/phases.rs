//! [`PhasesReport`]: the JSON shape served by `GET /phases`.
//!
//! The streaming analyzer (crates/analyzer) computes phase structure
//! incrementally while a serve-mode job runs; this module owns only the
//! *wire shape* of that state so the HTTP layer and the golden-file test
//! stay in the dependency-free obs crate. The analyzer fills the struct,
//! [`PhasesReport::to_json`] renders it deterministically (fixed key
//! order, stable float formatting), and `crates/obs/tests/golden/
//! phases.json` locks the rendering against endpoint drift.

/// One phase as seen by the streaming analyzer at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Stable phase label (centroid index).
    pub id: usize,
    /// Training steps currently assigned to this phase.
    pub occupancy: u64,
    /// `occupancy` as a fraction of all assigned steps.
    pub share: f64,
    /// Centroid in the scaled (and, when engaged, PCA-projected)
    /// feature space.
    pub centroid: Vec<f64>,
}

/// A phase-transition event: the first step observed under a new label.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTransition {
    /// Step at which the assignment switched.
    pub step: u64,
    /// The label it switched to.
    pub phase: usize,
}

/// Snapshot of live phase structure, served as JSON by `GET /phases`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhasesReport {
    /// Per-phase occupancy and centroids; empty until the first update.
    pub phases: Vec<PhaseStat>,
    /// Fraction of previously-labeled sampled steps whose assignment
    /// survived the latest update unchanged (1.0 = perfectly stable).
    pub stability: f64,
    /// Consecutive updates at or above the stability threshold.
    pub stable_windows: u64,
    /// Incremental updates performed (sealed windows that carried new
    /// completed steps).
    pub updates: u64,
    /// Steps assigned to a phase so far.
    pub steps_assigned: u64,
    /// Step of the most recent label change in the timeline, if any.
    pub last_transition_step: Option<u64>,
    /// The phase-transition timeline in step order.
    pub transitions: Vec<PhaseTransition>,
}

impl PhasesReport {
    /// Renders the report as a deterministic JSON document (sorted,
    /// fixed key order — the exact bytes are golden-tested).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"phases\": [");
        for (i, phase) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let centroid: Vec<String> = phase.centroid.iter().map(|&v| float_json(v)).collect();
            out.push_str(&format!(
                "\n    {{\"id\": {}, \"occupancy\": {}, \"share\": {}, \"centroid\": [{}]}}",
                phase.id,
                phase.occupancy,
                float_json(phase.share),
                centroid.join(", ")
            ));
        }
        if !self.phases.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"stability\": {},\n",
            float_json(self.stability)
        ));
        out.push_str(&format!("  \"stable_windows\": {},\n", self.stable_windows));
        out.push_str(&format!("  \"updates\": {},\n", self.updates));
        out.push_str(&format!("  \"steps_assigned\": {},\n", self.steps_assigned));
        match self.last_transition_step {
            Some(step) => out.push_str(&format!("  \"last_transition_step\": {step},\n")),
            None => out.push_str("  \"last_transition_step\": null,\n"),
        }
        out.push_str("  \"transitions\": [");
        for (i, t) in self.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"step\": {}, \"phase\": {}}}",
                t.step, t.phase
            ));
        }
        if !self.transitions.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn float_json(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_valid_json_with_all_keys() {
        let json = PhasesReport::default().to_json();
        assert!(json.contains("\"phases\": []"));
        assert!(json.contains("\"last_transition_step\": null"));
        assert!(json.contains("\"transitions\": []"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn populated_report_renders_every_field() {
        let report = PhasesReport {
            phases: vec![PhaseStat {
                id: 0,
                occupancy: 3,
                share: 0.75,
                centroid: vec![0.5, 1.0],
            }],
            stability: 0.9,
            stable_windows: 2,
            updates: 4,
            steps_assigned: 4,
            last_transition_step: Some(9),
            transitions: vec![PhaseTransition { step: 9, phase: 1 }],
        };
        let json = report.to_json();
        assert!(json.contains("\"id\": 0"), "{json}");
        assert!(json.contains("\"centroid\": [0.5, 1]"), "{json}");
        assert!(json.contains("\"stability\": 0.9"), "{json}");
        assert!(json.contains("\"last_transition_step\": 9"), "{json}");
        assert!(json.contains("{\"step\": 9, \"phase\": 1}"), "{json}");
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let report = PhasesReport {
            stability: f64::NAN,
            ..PhasesReport::default()
        };
        assert!(report.to_json().contains("\"stability\": null"));
    }
}
