//! A dependency-free HTTP/1.1 endpoint for live observability.
//!
//! The paper's profiler runs *alongside* a live training job; serve mode
//! gives this reproduction the matching scrape surface. [`MetricsServer`]
//! binds a `std::net::TcpListener`, accepts on a dedicated thread, and
//! hands each connection to a short-lived handler thread so one stalled
//! client can never block another scrape. Built-in routes:
//!
//! * `GET /metrics` — the Prometheus text exposition of the process
//!   registry (see [`crate::to_prometheus_labeled`]);
//! * `GET /healthz` — degradation-aware health: `200 ok` while the run is
//!   clean, `503 degraded` once store errors, shed records, spilled
//!   backlog, or seal-queue backpressure appear ([`Health`]);
//! * `GET /status` — a JSON view of the live run (current step, OLS
//!   phase, window counts, spill depth), assembled by the caller's hook;
//! * `GET /phases` — the streaming analyzer's live phase structure
//!   (centroids, occupancy, transition timeline, stability; see
//!   [`crate::PhasesReport`]);
//! * `POST /quit` — requests graceful shutdown of the serving process.
//!
//! Query strings are stripped before routing (`GET /metrics?job=x`
//! reaches the metrics hook), and callers can extend the route table via
//! [`ServeHooks::route`] — the fleet layer mounts its `/jobs` control API
//! there without `crates/obs` learning anything about jobs.
//!
//! The server owns no policy: every response body comes from a
//! [`ServeHooks`] closure, so `crates/obs` stays dependency-free and the
//! profiler/runtime layers decide what "status" means.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use std::{fmt, io};

use crate::metrics::MetricsSnapshot;

/// Total wall-clock budget for reading one request (request line, headers,
/// and body). The per-read timeout alone would let a client trickle one
/// byte per 1.9s forever; this bounds the whole read.
const REQUEST_READ_DEADLINE: Duration = Duration::from_secs(5);

/// Upper bound on concurrently-handled connections; requests beyond it
/// receive a fast `503` instead of queueing unboundedly.
const MAX_IN_FLIGHT: usize = 64;

/// Largest request body the server will buffer (the `/jobs` submit API
/// posts small JSON documents; anything larger is hostile).
const MAX_BODY_BYTES: usize = 64 * 1024;

/// Degradation-aware health of a serving run, as reported by
/// `GET /healthz`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Health {
    /// One human-readable `name value` line per active degradation;
    /// empty means healthy.
    pub degradations: Vec<String>,
}

impl Health {
    /// A clean bill of health.
    pub fn healthy() -> Health {
        Health::default()
    }

    /// Whether no degradation is active (HTTP 200 vs 503).
    pub fn is_healthy(&self) -> bool {
        self.degradations.is_empty()
    }

    /// Derives health from a metrics snapshot: store errors, shed
    /// records, a pending spill backlog, and seal-queue backpressure all
    /// degrade the run.
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> Health {
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let gauge = |name: &str| snapshot.gauges.get(name).copied().unwrap_or(0.0);
        let mut degradations = Vec::new();
        let mut flag = |name: &str, value: u64| {
            if value > 0 {
                degradations.push(format!("{name} {value}"));
            }
        };
        flag("store_errors", counter("profiler.store_errors"));
        flag("records_shed", counter("profiler.records_shed"));
        flag(
            "store_spill_depth",
            gauge("profiler.store_spill_depth") as u64,
        );
        flag(
            "seal_backpressure_waits",
            counter("profiler.seal_backpressure_waits"),
        );
        Health { degradations }
    }

    /// The `/healthz` body: `ok`, or `degraded` plus one line per cause.
    pub fn body(&self) -> String {
        if self.is_healthy() {
            return "ok\n".to_owned();
        }
        let mut out = String::from("degraded\n");
        for degradation in &self.degradations {
            out.push_str(degradation);
            out.push('\n');
        }
        out
    }
}

/// A parsed inbound request, as seen by [`ServeHooks::route`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// HTTP method (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Path with the query string already stripped (`/jobs/a`).
    pub path: String,
    /// Raw query string without the leading `?` (empty when absent).
    pub query: String,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: String,
}

/// A response produced by a [`ServeHooks::route`] hook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (`200`, `404`, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "application/json".to_owned(),
            body: body.into(),
        }
    }

    /// A JSON response with an explicit status code.
    pub fn json_status(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json".to_owned(),
            body: body.into(),
        }
    }

    /// A plain-text response with an explicit status code.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".to_owned(),
            body: body.into(),
        }
    }
}

/// Maps a status code to the HTTP/1.1 status line text.
fn status_line(status: u16) -> &'static str {
    match status {
        200 => "200 OK",
        201 => "201 Created",
        202 => "202 Accepted",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        409 => "409 Conflict",
        413 => "413 Payload Too Large",
        429 => "429 Too Many Requests",
        503 => "503 Service Unavailable",
        _ => "500 Internal Server Error",
    }
}

/// A [`ServeHooks::route`] catch-all: maps a request to a response, or
/// `None` to fall through to the 404 handler.
pub type RouteHook = Box<dyn Fn(&Request) -> Option<Response> + Send + Sync>;

/// Response providers for the built-in routes, plus an optional catch-all
/// for caller-defined paths. Each hook runs on a short-lived
/// per-connection thread, once per request; hooks must therefore be
/// `Send + Sync` and cheap to call concurrently.
pub struct ServeHooks {
    /// Body of `GET /metrics` (Prometheus text exposition).
    pub metrics: Box<dyn Fn() -> String + Send + Sync>,
    /// Health behind `GET /healthz`.
    pub health: Box<dyn Fn() -> Health + Send + Sync>,
    /// JSON body of `GET /status`.
    pub status: Box<dyn Fn() -> String + Send + Sync>,
    /// JSON body of `GET /phases` — conventionally
    /// [`crate::PhasesReport::to_json`] over the streaming analyzer's
    /// latest snapshot.
    pub phases: Box<dyn Fn() -> String + Send + Sync>,
    /// Invoked by `POST /quit`; should request graceful shutdown of the
    /// run that owns the server.
    pub quit: Box<dyn Fn() + Send + Sync>,
    /// Consulted for any path the built-in table does not match; return
    /// `None` to fall through to 404. The fleet layer mounts its `/jobs`
    /// control API here.
    pub route: Option<RouteHook>,
}

impl fmt::Debug for ServeHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeHooks").finish_non_exhaustive()
    }
}

/// The live observability endpoint; see the module docs.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// answering on a background accept thread; each accepted connection
    /// is served on its own short-lived thread.
    ///
    /// # Errors
    ///
    /// Returns the bind/spawn error.
    pub fn bind(addr: &str, hooks: ServeHooks) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let hooks = Arc::new(hooks);
        let thread = std::thread::Builder::new()
            .name("tpupoint-metrics-http".to_owned())
            .spawn(move || accept_loop(&listener, &hooks, &accept_stop))?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it awake so it can
        // observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Decrements the in-flight counter when the handler thread finishes (or
/// when a failed spawn drops the closure unrun).
struct InFlightGuard(Arc<AtomicUsize>);

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(listener: &TcpListener, hooks: &Arc<ServeHooks>, stop: &Arc<AtomicBool>) {
    let in_flight = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        if in_flight.fetch_add(1, Ordering::SeqCst) >= MAX_IN_FLIGHT {
            in_flight.fetch_sub(1, Ordering::SeqCst);
            let body = "busy\n";
            let _ = write!(
                stream,
                "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            continue;
        }
        let guard = InFlightGuard(Arc::clone(&in_flight));
        let conn_hooks = Arc::clone(hooks);
        // Handling happens off the accept thread so a stalled client can
        // never block other scrapes; if thread spawn itself fails (fd or
        // memory pressure) the connection is dropped rather than risking
        // an inline stall of the accept loop.
        let _ = std::thread::Builder::new()
            .name("tpupoint-http-conn".to_owned())
            .spawn(move || {
                let _guard = guard;
                handle(stream, &conn_hooks);
            });
    }
}

/// Reads one line with the remaining slice of the total request deadline
/// as the socket read timeout. Returns `None` on timeout, EOF, or error.
fn read_line_by(
    reader: &mut BufReader<TcpStream>,
    started: Instant,
    line: &mut String,
) -> Option<usize> {
    let remaining = REQUEST_READ_DEADLINE.checked_sub(started.elapsed())?;
    let _ = reader.get_ref().set_read_timeout(Some(remaining));
    match reader.read_line(line) {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n),
    }
}

fn handle(mut stream: TcpStream, hooks: &ServeHooks) {
    let started = Instant::now();
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut request_line = String::new();
    if read_line_by(&mut reader, started, &mut request_line).is_none() {
        return;
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    // Real Prometheus scrape configs append query params; route on the
    // bare path.
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    // Drain the header block so the peer sees its request fully read
    // before the response closes the connection, capturing Content-Length
    // for routes that accept a body.
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        match read_line_by(&mut reader, started, &mut header) {
            None => break,
            Some(_) if header == "\r\n" || header == "\n" => break,
            Some(_) => {
                if let Some((name, value)) = header.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap_or(0);
                    }
                }
            }
        }
    }
    let mut body = String::new();
    if content_length > 0 && content_length <= MAX_BODY_BYTES {
        let mut raw = vec![0u8; content_length];
        let mut filled = 0usize;
        while filled < raw.len() {
            let Some(remaining) = REQUEST_READ_DEADLINE.checked_sub(started.elapsed()) else {
                break;
            };
            let _ = reader.get_ref().set_read_timeout(Some(remaining));
            match reader.read(&mut raw[filled..]) {
                Ok(0) | Err(_) => break,
                Ok(n) => filled += n,
            }
        }
        raw.truncate(filled);
        body = String::from_utf8_lossy(&raw).into_owned();
    }
    crate::metrics().counter("obs.http_requests").inc();
    let response = match (method, path) {
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8".to_owned(),
            body: (hooks.metrics)(),
        },
        ("GET", "/healthz") => {
            let health = (hooks.health)();
            let status = if health.is_healthy() { 200 } else { 503 };
            Response::text(status, health.body())
        }
        ("GET", "/status") => Response::json((hooks.status)()),
        ("GET", "/phases") => Response::json((hooks.phases)()),
        ("POST", "/quit") | ("GET", "/quit") => {
            (hooks.quit)();
            Response::text(200, "quitting\n")
        }
        _ => {
            let request = Request {
                method: method.to_owned(),
                path: path.to_owned(),
                query: query.to_owned(),
                body,
            };
            match hooks.route.as_ref().and_then(|route| route(&request)) {
                Some(response) => response,
                None => Response::text(404, format!("no route for {method} {path}\n")),
            }
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        status_line(response.status),
        response.content_type,
        response.body.len(),
        response.body
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;
    use std::io::Read;

    fn fixed_hooks(quit_flag: Arc<AtomicBool>) -> ServeHooks {
        ServeHooks {
            metrics: Box::new(|| "tpupoint_up 1\n".to_owned()),
            health: Box::new(Health::healthy),
            status: Box::new(|| "{\"step\":7}".to_owned()),
            phases: Box::new(|| crate::PhasesReport::default().to_json()),
            quit: Box::new(move || quit_flag.store(true, Ordering::SeqCst)),
            route: None,
        }
    }

    fn request(addr: SocketAddr, line: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "{line} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("full response");
        let status = head.lines().next().unwrap_or("").to_owned();
        (status, body.to_owned())
    }

    #[test]
    fn routes_serve_their_hooks() {
        let quit = Arc::new(AtomicBool::new(false));
        let server = MetricsServer::bind("127.0.0.1:0", fixed_hooks(Arc::clone(&quit))).unwrap();
        let addr = server.local_addr();
        let (status, body) = request(addr, "GET /metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "tpupoint_up 1\n");
        let (status, body) = request(addr, "GET /healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok\n");
        let (status, body) = request(addr, "GET /status");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "{\"step\":7}");
        let (status, body) = request(addr, "GET /phases");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"phases\": []"), "{body}");
        assert!(body.contains("\"stability\": 0"), "{body}");
        let (status, _) = request(addr, "GET /nowhere");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        assert!(!quit.load(Ordering::SeqCst));
        let (status, body) = request(addr, "POST /quit");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "quitting\n");
        assert!(quit.load(Ordering::SeqCst));
        server.shutdown();
    }

    #[test]
    fn query_strings_are_stripped_before_routing() {
        let server =
            MetricsServer::bind("127.0.0.1:0", fixed_hooks(Arc::new(AtomicBool::new(false))))
                .unwrap();
        let addr = server.local_addr();
        // Prometheus scrape configs append query params; they must not 404.
        let (status, body) = request(addr, "GET /metrics?job=x&instance=y");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "tpupoint_up 1\n");
        let (status, _) = request(addr, "GET /healthz?verbose=1");
        assert_eq!(status, "HTTP/1.1 200 OK");
        server.shutdown();
    }

    #[test]
    fn stalled_client_does_not_block_other_scrapes() {
        let server =
            MetricsServer::bind("127.0.0.1:0", fixed_hooks(Arc::new(AtomicBool::new(false))))
                .unwrap();
        let addr = server.local_addr();
        // A client that opens a connection and trickles a partial request
        // line without ever finishing it. Before per-connection handler
        // threads this parked the accept loop for the whole read timeout,
        // freezing every other scrape.
        let mut stalled = TcpStream::connect(addr).expect("connect stalled client");
        stalled.write_all(b"GET /metr").expect("partial write");
        stalled.flush().unwrap();
        let started = Instant::now();
        let (status, body) = request(addr, "GET /metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "tpupoint_up 1\n");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "concurrent scrape stalled behind a slow client: {:?}",
            started.elapsed()
        );
        drop(stalled);
        server.shutdown();
    }

    #[test]
    fn route_hook_extends_the_table_and_sees_bodies() {
        let hooks = ServeHooks {
            metrics: Box::new(String::new),
            health: Box::new(Health::healthy),
            status: Box::new(String::new),
            phases: Box::new(String::new),
            quit: Box::new(|| {}),
            route: Some(Box::new(|request: &Request| match request.path.as_str() {
                "/jobs" if request.method == "POST" => Some(Response::json_status(
                    201,
                    format!("{{\"echo\":{}}}", request.body.trim().len()),
                )),
                "/jobs" if request.method == "GET" => {
                    Some(Response::json(format!("{{\"q\":\"{}\"}}", request.query)))
                }
                _ => None,
            })),
        };
        let server = MetricsServer::bind("127.0.0.1:0", hooks).unwrap();
        let addr = server.local_addr();
        let body = "{\"tenant\":\"a\"}";
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /jobs HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 201 Created"), "{response}");
        assert!(
            response.ends_with(&format!("{{\"echo\":{}}}", body.len())),
            "{response}"
        );
        let (status, body) = request(addr, "GET /jobs?tenant=a");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "{\"q\":\"tenant=a\"}");
        // Unmatched paths still fall through to 404.
        let (status, _) = request(addr, "GET /jobs/missing/phases");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        server.shutdown();
    }

    #[test]
    fn degraded_health_serves_503_with_causes() {
        let hooks = ServeHooks {
            metrics: Box::new(String::new),
            health: Box::new(|| Health {
                degradations: vec!["store_errors 4".to_owned()],
            }),
            status: Box::new(String::new),
            phases: Box::new(String::new),
            quit: Box::new(|| {}),
            route: None,
        };
        let server = MetricsServer::bind("127.0.0.1:0", hooks).unwrap();
        let (status, body) = request(server.local_addr(), "GET /healthz");
        assert_eq!(status, "HTTP/1.1 503 Service Unavailable");
        assert_eq!(body, "degraded\nstore_errors 4\n");
    }

    #[test]
    fn health_derives_from_degradation_metrics() {
        let metrics = Metrics::new();
        assert!(Health::from_snapshot(&metrics.snapshot()).is_healthy());
        metrics.counter("profiler.store_errors").add(4);
        metrics.counter("profiler.seal_backpressure_waits").add(2);
        metrics.gauge("profiler.store_spill_depth").set(3.0);
        let health = Health::from_snapshot(&metrics.snapshot());
        assert!(!health.is_healthy());
        assert_eq!(
            health.degradations,
            vec![
                "store_errors 4".to_owned(),
                "store_spill_depth 3".to_owned(),
                "seal_backpressure_waits 2".to_owned(),
            ]
        );
        assert!(health.body().starts_with("degraded\n"));
    }

    #[test]
    fn zeroed_degradation_metrics_stay_healthy() {
        let metrics = Metrics::new();
        metrics.counter("profiler.store_errors");
        metrics.gauge("profiler.store_spill_depth");
        let health = Health::from_snapshot(&metrics.snapshot());
        assert!(health.is_healthy());
        assert_eq!(health.body(), "ok\n");
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let server =
            MetricsServer::bind("127.0.0.1:0", fixed_hooks(Arc::new(AtomicBool::new(false))))
                .unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // The listener is gone: a fresh bind of the same port succeeds.
        let rebound = TcpListener::bind(addr).expect("port released");
        drop(rebound);
    }
}
