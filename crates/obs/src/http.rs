//! A dependency-free HTTP/1.1 endpoint for live observability.
//!
//! The paper's profiler runs *alongside* a live training job; serve mode
//! gives this reproduction the matching scrape surface. [`MetricsServer`]
//! binds a `std::net::TcpListener`, answers on a dedicated accept thread,
//! and routes four paths:
//!
//! * `GET /metrics` — the Prometheus text exposition of the process
//!   registry (see [`crate::to_prometheus_labeled`]);
//! * `GET /healthz` — degradation-aware health: `200 ok` while the run is
//!   clean, `503 degraded` once store errors, shed records, spilled
//!   backlog, or seal-queue backpressure appear ([`Health`]);
//! * `GET /status` — a JSON view of the live run (current step, OLS
//!   phase, window counts, spill depth), assembled by the caller's hook;
//! * `GET /phases` — the streaming analyzer's live phase structure
//!   (centroids, occupancy, transition timeline, stability; see
//!   [`crate::PhasesReport`]);
//! * `POST /quit` — requests graceful shutdown of the serving process.
//!
//! The server owns no policy: every response body comes from a
//! [`ServeHooks`] closure, so `crates/obs` stays dependency-free and the
//! profiler/runtime layers decide what "status" means.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use std::{fmt, io};

use crate::metrics::MetricsSnapshot;

/// Degradation-aware health of a serving run, as reported by
/// `GET /healthz`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Health {
    /// One human-readable `name value` line per active degradation;
    /// empty means healthy.
    pub degradations: Vec<String>,
}

impl Health {
    /// A clean bill of health.
    pub fn healthy() -> Health {
        Health::default()
    }

    /// Whether no degradation is active (HTTP 200 vs 503).
    pub fn is_healthy(&self) -> bool {
        self.degradations.is_empty()
    }

    /// Derives health from a metrics snapshot: store errors, shed
    /// records, a pending spill backlog, and seal-queue backpressure all
    /// degrade the run.
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> Health {
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let gauge = |name: &str| snapshot.gauges.get(name).copied().unwrap_or(0.0);
        let mut degradations = Vec::new();
        let mut flag = |name: &str, value: u64| {
            if value > 0 {
                degradations.push(format!("{name} {value}"));
            }
        };
        flag("store_errors", counter("profiler.store_errors"));
        flag("records_shed", counter("profiler.records_shed"));
        flag(
            "store_spill_depth",
            gauge("profiler.store_spill_depth") as u64,
        );
        flag(
            "seal_backpressure_waits",
            counter("profiler.seal_backpressure_waits"),
        );
        Health { degradations }
    }

    /// The `/healthz` body: `ok`, or `degraded` plus one line per cause.
    pub fn body(&self) -> String {
        if self.is_healthy() {
            return "ok\n".to_owned();
        }
        let mut out = String::from("degraded\n");
        for degradation in &self.degradations {
            out.push_str(degradation);
            out.push('\n');
        }
        out
    }
}

/// Response providers for the four routes. Each hook runs on the accept
/// thread, once per request.
pub struct ServeHooks {
    /// Body of `GET /metrics` (Prometheus text exposition).
    pub metrics: Box<dyn Fn() -> String + Send + Sync>,
    /// Health behind `GET /healthz`.
    pub health: Box<dyn Fn() -> Health + Send + Sync>,
    /// JSON body of `GET /status`.
    pub status: Box<dyn Fn() -> String + Send + Sync>,
    /// JSON body of `GET /phases` — conventionally
    /// [`crate::PhasesReport::to_json`] over the streaming analyzer's
    /// latest snapshot.
    pub phases: Box<dyn Fn() -> String + Send + Sync>,
    /// Invoked by `POST /quit`; should request graceful shutdown of the
    /// run that owns the server.
    pub quit: Box<dyn Fn() + Send + Sync>,
}

impl fmt::Debug for ServeHooks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeHooks").finish_non_exhaustive()
    }
}

/// The live observability endpoint; see the module docs.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// answering on a background thread.
    ///
    /// # Errors
    ///
    /// Returns the bind/spawn error.
    pub fn bind(addr: &str, hooks: ServeHooks) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("tpupoint-metrics-http".to_owned())
            .spawn(move || accept_loop(&listener, &hooks, &accept_stop))?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); poke it awake so it can
        // observe the stop flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, hooks: &ServeHooks, stop: &AtomicBool) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if let Ok(stream) = stream {
            handle(stream, hooks);
        }
    }
}

fn handle(mut stream: TcpStream, hooks: &ServeHooks) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut request = String::new();
    if reader.read_line(&mut request).is_err() {
        return;
    }
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    // Drain the header block so the peer sees its request fully read
    // before the response closes the connection.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
        }
    }
    crate::metrics().counter("obs.http_requests").inc();
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            (hooks.metrics)(),
        ),
        ("GET", "/healthz") => {
            let health = (hooks.health)();
            let status = if health.is_healthy() {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            (status, "text/plain; charset=utf-8", health.body())
        }
        ("GET", "/status") => ("200 OK", "application/json", (hooks.status)()),
        ("GET", "/phases") => ("200 OK", "application/json", (hooks.phases)()),
        ("POST", "/quit") | ("GET", "/quit") => {
            (hooks.quit)();
            (
                "200 OK",
                "text/plain; charset=utf-8",
                "quitting\n".to_owned(),
            )
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            format!("no route for {method} {path}\n"),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;
    use std::io::Read;

    fn fixed_hooks(quit_flag: Arc<AtomicBool>) -> ServeHooks {
        ServeHooks {
            metrics: Box::new(|| "tpupoint_up 1\n".to_owned()),
            health: Box::new(Health::healthy),
            status: Box::new(|| "{\"step\":7}".to_owned()),
            phases: Box::new(|| crate::PhasesReport::default().to_json()),
            quit: Box::new(move || quit_flag.store(true, Ordering::SeqCst)),
        }
    }

    fn request(addr: SocketAddr, line: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "{line} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("full response");
        let status = head.lines().next().unwrap_or("").to_owned();
        (status, body.to_owned())
    }

    #[test]
    fn routes_serve_their_hooks() {
        let quit = Arc::new(AtomicBool::new(false));
        let server = MetricsServer::bind("127.0.0.1:0", fixed_hooks(Arc::clone(&quit))).unwrap();
        let addr = server.local_addr();
        let (status, body) = request(addr, "GET /metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "tpupoint_up 1\n");
        let (status, body) = request(addr, "GET /healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok\n");
        let (status, body) = request(addr, "GET /status");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "{\"step\":7}");
        let (status, body) = request(addr, "GET /phases");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"phases\": []"), "{body}");
        assert!(body.contains("\"stability\": 0"), "{body}");
        let (status, _) = request(addr, "GET /nowhere");
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        assert!(!quit.load(Ordering::SeqCst));
        let (status, body) = request(addr, "POST /quit");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "quitting\n");
        assert!(quit.load(Ordering::SeqCst));
        server.shutdown();
    }

    #[test]
    fn degraded_health_serves_503_with_causes() {
        let hooks = ServeHooks {
            metrics: Box::new(String::new),
            health: Box::new(|| Health {
                degradations: vec!["store_errors 4".to_owned()],
            }),
            status: Box::new(String::new),
            phases: Box::new(String::new),
            quit: Box::new(|| {}),
        };
        let server = MetricsServer::bind("127.0.0.1:0", hooks).unwrap();
        let (status, body) = request(server.local_addr(), "GET /healthz");
        assert_eq!(status, "HTTP/1.1 503 Service Unavailable");
        assert_eq!(body, "degraded\nstore_errors 4\n");
    }

    #[test]
    fn health_derives_from_degradation_metrics() {
        let metrics = Metrics::new();
        assert!(Health::from_snapshot(&metrics.snapshot()).is_healthy());
        metrics.counter("profiler.store_errors").add(4);
        metrics.counter("profiler.seal_backpressure_waits").add(2);
        metrics.gauge("profiler.store_spill_depth").set(3.0);
        let health = Health::from_snapshot(&metrics.snapshot());
        assert!(!health.is_healthy());
        assert_eq!(
            health.degradations,
            vec![
                "store_errors 4".to_owned(),
                "store_spill_depth 3".to_owned(),
                "seal_backpressure_waits 2".to_owned(),
            ]
        );
        assert!(health.body().starts_with("degraded\n"));
    }

    #[test]
    fn zeroed_degradation_metrics_stay_healthy() {
        let metrics = Metrics::new();
        metrics.counter("profiler.store_errors");
        metrics.gauge("profiler.store_spill_depth");
        let health = Health::from_snapshot(&metrics.snapshot());
        assert!(health.is_healthy());
        assert_eq!(health.body(), "ok\n");
    }

    #[test]
    fn shutdown_joins_and_frees_the_port() {
        let server =
            MetricsServer::bind("127.0.0.1:0", fixed_hooks(Arc::new(AtomicBool::new(false))))
                .unwrap();
        let addr = server.local_addr();
        server.shutdown();
        // The listener is gone: a fresh bind of the same port succeeds.
        let rebound = TcpListener::bind(addr).expect("port released");
        drop(rebound);
    }
}
