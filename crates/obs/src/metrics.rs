//! The metrics registry: named counters, gauges, and log-scale
//! histograms behind cheap handles.
//!
//! Handles are `Arc`-backed, so looking one up once and updating it in a
//! loop costs a single atomic add per update. Lookups themselves take a
//! short mutex on the name table; instrumented code is expected to hoist
//! them out of hot loops.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log-scale histogram buckets; bucket `i` covers values in
/// `[2^i, 2^(i+1))`, with bucket 0 also holding zero.
const BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding the most recently written `f64`.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram over `u64` samples with power-of-two buckets.
///
/// Designed for durations in microseconds and for size-like quantities
/// (events per window): log-scale buckets give useful resolution from
/// single-digit values to hours without configuration.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum", &snap.sum)
            .finish_non_exhaustive()
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_upper_bound(i), n))
                })
                .collect(),
        }
    }
}

fn bucket_index(value: u64) -> usize {
    63 - value.max(1).leading_zeros() as usize
}

/// Inclusive upper bound of bucket `i`, i.e. `2^(i+1) - 1`.
fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive_upper_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other`'s samples into `self`: counts, sums, and buckets
    /// add; `min`/`max` widen. Used to build fleet-level aggregate series
    /// out of per-job registries.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        let mut buckets: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(le, n) in &other.buckets {
            *buckets.entry(le).or_insert(0) += n;
        }
        self.buckets = buckets.into_iter().collect();
    }

    /// Snapshot of the samples recorded since `earlier` was taken.
    ///
    /// `min`/`max` cannot be un-merged, so the diff keeps the later
    /// values; counts, sums, and buckets subtract exactly.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let earlier_buckets: BTreeMap<u64, u64> = earlier.buckets.iter().copied().collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .filter_map(|&(le, n)| {
                    let remaining =
                        n.saturating_sub(earlier_buckets.get(&le).copied().unwrap_or(0));
                    (remaining > 0).then_some((le, remaining))
                })
                .collect(),
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A cheap, cloneable handle to a metrics registry.
#[derive(Clone, Default)]
pub struct Metrics {
    registry: Arc<Registry>,
}

impl Metrics {
    /// Creates an empty registry. Most callers want the process-wide
    /// registry from [`crate::metrics`] instead; separate registries are
    /// for tests.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The counter with the given name, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut table = self.registry.counters.lock().expect("counter table");
        table
            .entry(name.to_owned())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The gauge with the given name, created on first use (at 0.0).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut table = self.registry.gauges.lock().expect("gauge table");
        table
            .entry(name.to_owned())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// The histogram with the given name, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut table = self.registry.histograms.lock().expect("histogram table");
        table
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// A consistent-enough point-in-time view of every metric. Values
    /// are read with relaxed ordering; the snapshot is exact whenever no
    /// other thread is concurrently updating.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .registry
                .counters
                .lock()
                .expect("counter table")
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .registry
                .gauges
                .lock()
                .expect("gauge table")
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .registry
                .histograms
                .lock()
                .expect("histogram table")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time view of a whole registry; what the exporters and
/// [`crate::ObsReport`] consume.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Folds `other` into `self`: counters and histograms add, gauges
    /// sum. The fleet layer merges per-job snapshots into one aggregate
    /// registry view; summed gauges are meaningful for the depth/backlog
    /// gauges the health plane reads (spill depth, queue depth), which is
    /// what aggregates exist for.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0.0) += value;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// The activity between `earlier` and `self`, for scoping one run's
    /// metrics out of a long-lived registry: counters and histograms
    /// subtract; gauges keep their latest value; metrics that saw no
    /// activity in the interval are omitted (gauges excepted).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter_map(|(name, &value)| {
                    let delta =
                        value.saturating_sub(earlier.counters.get(name).copied().unwrap_or(0));
                    (delta > 0).then(|| (name.clone(), delta))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .filter_map(|(name, hist)| {
                    let delta = match earlier.histograms.get(name) {
                        Some(prev) => hist.since(prev),
                        None => hist.clone(),
                    };
                    (delta.count > 0).then(|| (name.clone(), delta))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_state_across_handles() {
        let metrics = Metrics::new();
        let a = metrics.counter("x");
        let b = metrics.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(metrics.counter("x").get(), 5);
        assert_eq!(metrics.snapshot().counters["x"], 5);
    }

    #[test]
    fn gauges_overwrite() {
        let metrics = Metrics::new();
        metrics.gauge("g").set(1.5);
        metrics.gauge("g").set(-2.25);
        assert_eq!(metrics.snapshot().gauges["g"], -2.25);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        let metrics = Metrics::new();
        let h = metrics.histogram("h");
        for v in [0, 1, 2, 3, 900, 1000] {
            h.record(v);
        }
        let snap = &metrics.snapshot().histograms["h"];
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1906);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1000);
        // 0 and 1 share bucket [1,2); 2 and 3 share [2,4); 900 and 1000
        // share [512,1024).
        assert_eq!(snap.buckets, vec![(1, 2), (3, 2), (1023, 2)]);
        assert!((snap.mean() - 1906.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_index_covers_extremes() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn snapshot_merge_aggregates_jobs() {
        let a = Metrics::new();
        a.counter("profiler.store_errors").add(3);
        a.gauge("profiler.store_spill_depth").set(2.0);
        a.histogram("profiler.store_backoff_us").record(100);
        let b = Metrics::new();
        b.counter("profiler.store_errors").add(4);
        b.counter("profiler.windows_sealed").add(9);
        b.gauge("profiler.store_spill_depth").set(1.0);
        b.histogram("profiler.store_backoff_us").record(900);
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.counters["profiler.store_errors"], 7);
        assert_eq!(total.counters["profiler.windows_sealed"], 9);
        assert_eq!(total.gauges["profiler.store_spill_depth"], 3.0);
        let h = &total.histograms["profiler.store_backoff_us"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1000);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 900);
        assert_eq!(h.buckets, vec![(127, 1), (1023, 1)]);
        // Merging an empty histogram leaves min untouched.
        let mut empty = HistogramSnapshot::default();
        empty.merge(&h.clone());
        assert_eq!(empty.min, 100);
    }

    #[test]
    fn snapshot_diff_scopes_one_interval() {
        let metrics = Metrics::new();
        metrics.counter("c").add(3);
        metrics.histogram("h").record(10);
        let before = metrics.snapshot();
        metrics.counter("c").add(2);
        metrics.counter("quiet").get();
        metrics.histogram("h").record(10);
        metrics.histogram("h").record(100);
        metrics.gauge("g").set(7.0);
        let delta = metrics.snapshot().since(&before);
        assert_eq!(delta.counters.get("c"), Some(&2));
        // Metrics with no activity in the window drop out of the diff.
        assert!(!delta.counters.contains_key("quiet"));
        let h = &delta.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 110);
        assert_eq!(h.buckets, vec![(15, 1), (127, 1)]);
        assert_eq!(delta.gauges["g"], 7.0);
    }
}
