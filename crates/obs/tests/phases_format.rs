//! Golden-file lock on the `GET /phases` JSON shape.
//!
//! The live phases endpoint is consumed by external tooling (dashboards,
//! curl-in-CI), so its exact rendering — key order, float formatting,
//! array layout — is a compatibility contract just like the Prometheus
//! exposition. This test renders a fixed [`PhasesReport`] and compares it
//! byte-for-byte with the checked-in golden file; any intentional format
//! change must update `tests/golden/phases.json` alongside.

use tpupoint_obs::{PhaseStat, PhaseTransition, PhasesReport};

const GOLDEN: &str = include_str!("golden/phases.json");

fn fixed_report() -> PhasesReport {
    PhasesReport {
        phases: vec![
            PhaseStat {
                id: 0,
                occupancy: 24,
                share: 0.6,
                // Mixed float shapes: fraction, integral, zero.
                centroid: vec![0.25, 1.0, 0.0],
            },
            PhaseStat {
                id: 1,
                occupancy: 16,
                share: 0.4,
                centroid: vec![0.75, 0.125],
            },
        ],
        stability: 0.9375,
        stable_windows: 3,
        updates: 7,
        steps_assigned: 40,
        last_transition_step: Some(33),
        transitions: vec![
            PhaseTransition { step: 17, phase: 1 },
            PhaseTransition { step: 33, phase: 0 },
        ],
    }
}

#[test]
fn phases_json_matches_the_golden_file() {
    assert_eq!(
        fixed_report().to_json(),
        GOLDEN,
        "/phases JSON drifted from tests/golden/phases.json; \
         if the change is intentional, update the golden file"
    );
}

#[test]
fn golden_file_is_self_consistent() {
    // Sanity on the golden file itself, so a bad regeneration can't lock
    // in a broken shape: balanced braces/brackets and every contract key
    // present exactly once at the top level.
    assert_eq!(GOLDEN.matches('{').count(), GOLDEN.matches('}').count());
    assert_eq!(GOLDEN.matches('[').count(), GOLDEN.matches(']').count());
    for key in [
        "\"phases\"",
        "\"stability\"",
        "\"stable_windows\"",
        "\"updates\"",
        "\"steps_assigned\"",
        "\"last_transition_step\"",
        "\"transitions\"",
    ] {
        assert_eq!(
            GOLDEN.matches(&format!("\n  {key}: ")).count(),
            1,
            "top-level key {key} missing or duplicated"
        );
    }
    assert!(GOLDEN.ends_with("]\n}\n"), "trailing shape changed");
}
