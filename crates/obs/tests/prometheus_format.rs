//! Golden-file lock on the Prometheus text exposition format.
//!
//! The serve-mode scrape surface is consumed by external tooling
//! (Prometheus, curl-in-CI), so its exact shape — HELP/TYPE headers,
//! cumulative `_bucket` expansion, label composition, and escaping — is a
//! compatibility contract. This test renders a fixed registry and compares
//! it byte-for-byte with the checked-in golden file; any intentional
//! format change must update `tests/golden/prometheus.txt` alongside.

use tpupoint_obs::{to_prometheus_labeled, Metrics};

const GOLDEN: &str = include_str!("golden/prometheus.txt");

fn fixed_registry() -> Metrics {
    let metrics = Metrics::new();
    metrics.counter("profiler.store_errors").add(4);
    metrics.counter("profiler.windows_sealed").add(12);
    // Registered but never incremented: must still export at zero.
    metrics.counter("profiler.records_shed");
    metrics.gauge("profiler.overhead_ratio").set(1.03);
    metrics.gauge("profiler.store_spill_depth").set(0.0);
    let seal = metrics.histogram("profiler.seal_latency_us");
    seal.record(900);
    seal.record(1500);
    seal.record(2100);
    // A name outside the known-help table, exercising the span fallback.
    metrics.histogram("span.analyzer.kmeans").record(4096);
    // Nasty name characters are sanitized into the prom name.
    metrics.counter("weird-name.with chars").inc();
    metrics
}

#[test]
fn exposition_matches_the_golden_file() {
    let text = to_prometheus_labeled(
        &fixed_registry().snapshot(),
        // A label value needing every escape: backslash, quote, newline.
        &[("workload", "bert-mrpc"), ("path", "C:\\tmp\n\"x\"")],
    );
    assert_eq!(
        text, GOLDEN,
        "Prometheus exposition drifted from tests/golden/prometheus.txt; \
         if the change is intentional, update the golden file"
    );
}

#[test]
fn golden_file_is_self_consistent() {
    // Sanity on the golden file itself, so a bad regeneration can't lock
    // in a broken format: paired HELP/TYPE headers, cumulative buckets,
    // and the escaped label block on every sample line.
    let help = GOLDEN.matches("# HELP ").count();
    let typ = GOLDEN.matches("# TYPE ").count();
    assert_eq!(help, typ);
    assert!(help >= 7, "one header pair per series, got {help}");
    for line in GOLDEN.lines().filter(|l| !l.starts_with('#')) {
        assert!(
            line.contains("workload=\"bert-mrpc\""),
            "unlabeled sample line: {line}"
        );
        assert!(
            line.contains("path=\"C:\\\\tmp\\n\\\"x\\\"\""),
            "unescaped label value: {line}"
        );
    }
    assert!(GOLDEN.contains("le=\"+Inf\""));
}
