//! Integration: the pipelined profiler (off-critical-path window sealing
//! on the shared worker pool) is a byte-for-byte drop-in for the serial
//! sink. For every pool size, the sealed JSONL streams, the manifest, and
//! the finished [`Profile`] must be identical to the serial run — and
//! seeded store-fault scenarios must replay the exact same error
//! sequence, because determinism that breaks under faults is no
//! determinism at all.

use std::path::{Path, PathBuf};
use tpupoint::prelude::*;
use tpupoint::profiler::ProfilerOptions;
use tpupoint::TpuPoint;

fn config() -> JobConfig {
    build(
        WorkloadId::DcganCifar10,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.05,
            seed: 7,
            ..BuildOptions::default()
        },
    )
}

/// Small windows so the run seals many of them — the pipelined path gets
/// real traffic, not one window at shutdown.
fn options() -> ProfilerOptions {
    ProfilerOptions {
        window_max_events: 64,
        ..ProfilerOptions::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpupoint-pipedet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_lane(dir: &Path, pipelined: bool, fault: Option<(f64, u64, u32)>) -> ProfiledRun {
    let mut builder = TpuPoint::builder()
        .analyzer(true)
        .output_dir(dir)
        .profiler_options(options())
        .pipeline_profiler(pipelined);
    if let Some((prob, seed, retries)) = fault {
        builder = builder.store_fault(prob, seed).store_retries(retries);
    } else {
        builder = builder.store_retries(0);
    }
    builder.build().profile(config()).expect("profiling run")
}

fn record_bytes(dir: &Path) -> Vec<(&'static str, Vec<u8>)> {
    ["steps.jsonl", "windows.jsonl", "manifest.json"]
        .into_iter()
        .map(|file| {
            let bytes = std::fs::read(dir.join("records").join(file))
                .unwrap_or_else(|e| panic!("{file} missing under {}: {e}", dir.display()));
            (file, bytes)
        })
        .collect()
}

#[test]
fn pipelined_sealing_is_byte_identical_for_every_pool_size() {
    let serial_dir = tmp_dir("serial");
    let serial = run_lane(&serial_dir, false, None);
    let serial_bytes = record_bytes(&serial_dir);
    assert!(
        !serial.profile.windows.is_empty(),
        "fixture must seal windows"
    );

    for threads in [1usize, 2, 4, 8] {
        tpupoint_par::set_threads(threads);
        let dir = tmp_dir(&format!("pipe-{threads}"));
        let pipelined = run_lane(&dir, true, None);
        assert_eq!(
            pipelined.report, serial.report,
            "ground-truth run diverged at {threads} threads"
        );
        assert_eq!(
            pipelined.profile, serial.profile,
            "profile diverged at {threads} threads"
        );
        for ((file, a), (_, b)) in serial_bytes.iter().zip(record_bytes(&dir)) {
            assert!(
                *a == b,
                "{file} not byte-identical to serial at {threads} threads"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
    tpupoint_par::set_threads(0);
    std::fs::remove_dir_all(&serial_dir).unwrap();
}

#[test]
fn seeded_faults_replay_identically_through_the_pipeline() {
    // Retries on: the seeded fault stream is absorbed the same way on
    // both lanes, so the sealed bytes still match.
    let serial_dir = tmp_dir("fault-serial");
    let serial = run_lane(&serial_dir, false, Some((0.3, 21, 10)));
    let serial_bytes = record_bytes(&serial_dir);
    assert_eq!(serial.profile.store_errors, 0, "retries absorb the faults");

    tpupoint_par::set_threads(4);
    let pipe_dir = tmp_dir("fault-pipe");
    let pipelined = run_lane(&pipe_dir, true, Some((0.3, 21, 10)));
    assert_eq!(pipelined.profile, serial.profile);
    for ((file, a), (_, b)) in serial_bytes.iter().zip(record_bytes(&pipe_dir)) {
        assert!(*a == b, "{file} diverged under seeded faults");
    }

    // Retries off: both lanes must surface the *same* error accounting.
    let raw_serial_dir = tmp_dir("rawfault-serial");
    let raw_serial = run_lane(&raw_serial_dir, false, Some((0.4, 9, 0)));
    let raw_pipe_dir = tmp_dir("rawfault-pipe");
    let raw_pipelined = run_lane(&raw_pipe_dir, true, Some((0.4, 9, 0)));
    tpupoint_par::set_threads(0);
    assert!(raw_serial.profile.store_errors > 0, "fixture must fault");
    assert_eq!(
        raw_pipelined.profile.store_errors,
        raw_serial.profile.store_errors
    );
    assert_eq!(
        raw_pipelined.profile.store_error,
        raw_serial.profile.store_error
    );
    assert_eq!(raw_pipelined.profile, raw_serial.profile);

    for dir in [serial_dir, pipe_dir, raw_serial_dir, raw_pipe_dir] {
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
