//! Integration: the laned simulation engine (sharded per-lane event heaps
//! under a conservative time-window barrier) is a byte-for-byte drop-in
//! for the serial engine. For every lane count and pool size, the sealed
//! JSONL streams, the manifest, the Chrome trace, and the finished
//! [`Profile`] must be identical to the serial run — including under
//! seeded store faults and with the seal pipeline on, because determinism
//! that only holds on the happy path is no determinism at all.

use std::path::{Path, PathBuf};
use tpupoint::prelude::*;
use tpupoint::profiler::ProfilerOptions;
use tpupoint::TpuPoint;

fn config() -> JobConfig {
    build(
        WorkloadId::DcganCifar10,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.05,
            seed: 7,
            ..BuildOptions::default()
        },
    )
}

/// Small windows so the run seals many of them — lane barriers interleave
/// with real window traffic, not one seal at shutdown.
fn options() -> ProfilerOptions {
    ProfilerOptions {
        window_max_events: 64,
        ..ProfilerOptions::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpupoint-simdet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_lane(
    dir: &Path,
    sim_lanes: usize,
    pipelined: bool,
    fault: Option<(f64, u64, u32)>,
) -> ProfiledRun {
    let mut builder = TpuPoint::builder()
        .analyzer(true)
        .output_dir(dir)
        .profiler_options(options())
        .sim_lanes(sim_lanes)
        .pipeline_profiler(pipelined);
    if let Some((prob, seed, retries)) = fault {
        builder = builder.store_fault(prob, seed).store_retries(retries);
    } else {
        builder = builder.store_retries(0);
    }
    let tp = builder.build();
    let run = tp.profile(config()).expect("profiling run");
    // The Chrome trace rides along: analysis must see identical profiles,
    // so the written trace JSON must be byte-identical too.
    tp.analyze(&run.profile).expect("analysis artifacts");
    run
}

fn artifact_bytes(dir: &Path, model: &str) -> Vec<(String, Vec<u8>)> {
    let mut files = vec![
        dir.join("records").join("steps.jsonl"),
        dir.join("records").join("windows.jsonl"),
        dir.join("records").join("manifest.json"),
        dir.join(format!("{model}-trace.json")),
    ];
    files
        .drain(..)
        .map(|path| {
            let bytes =
                std::fs::read(&path).unwrap_or_else(|e| panic!("{} missing: {e}", path.display()));
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                bytes,
            )
        })
        .collect()
}

#[test]
fn laned_engine_is_byte_identical_for_every_pool_size() {
    let serial_dir = tmp_dir("serial");
    let serial = run_lane(&serial_dir, 1, false, None);
    let model = serial.profile.model.clone();
    let serial_bytes = artifact_bytes(&serial_dir, &model);
    assert!(
        !serial.profile.windows.is_empty(),
        "fixture must seal windows"
    );

    for threads in [1usize, 2, 4, 8] {
        tpupoint_par::set_threads(threads);
        for lanes in [2usize, 4] {
            let dir = tmp_dir(&format!("lane-{lanes}-t{threads}"));
            let laned = run_lane(&dir, lanes, false, None);
            assert_eq!(
                laned.report, serial.report,
                "ground-truth run diverged at {lanes} lanes / {threads} threads"
            );
            assert_eq!(
                laned.profile, serial.profile,
                "profile diverged at {lanes} lanes / {threads} threads"
            );
            for ((file, a), (_, b)) in serial_bytes.iter().zip(artifact_bytes(&dir, &model)) {
                assert!(
                    *a == b,
                    "{file} not byte-identical to serial at {lanes} lanes / {threads} threads"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
    tpupoint_par::set_threads(0);
    std::fs::remove_dir_all(&serial_dir).unwrap();
}

#[test]
fn seeded_faults_replay_identically_through_lanes() {
    // Retries on: the seeded fault stream is absorbed the same way on
    // both engines, so the sealed bytes still match.
    let serial_dir = tmp_dir("fault-serial");
    let serial = run_lane(&serial_dir, 1, false, Some((0.3, 21, 10)));
    let model = serial.profile.model.clone();
    let serial_bytes = artifact_bytes(&serial_dir, &model);
    assert_eq!(serial.profile.store_errors, 0, "retries absorb the faults");

    tpupoint_par::set_threads(4);
    let laned_dir = tmp_dir("fault-laned");
    let laned = run_lane(&laned_dir, 4, false, Some((0.3, 21, 10)));
    assert_eq!(laned.profile, serial.profile);
    for ((file, a), (_, b)) in serial_bytes.iter().zip(artifact_bytes(&laned_dir, &model)) {
        assert!(*a == b, "{file} diverged under seeded faults");
    }

    // Retries off: both engines must surface the *same* error accounting.
    let raw_serial_dir = tmp_dir("rawfault-serial");
    let raw_serial = run_lane(&raw_serial_dir, 1, false, Some((0.4, 9, 0)));
    let raw_laned_dir = tmp_dir("rawfault-laned");
    let raw_laned = run_lane(&raw_laned_dir, 4, false, Some((0.4, 9, 0)));
    tpupoint_par::set_threads(0);
    assert!(raw_serial.profile.store_errors > 0, "fixture must fault");
    assert_eq!(
        raw_laned.profile.store_errors,
        raw_serial.profile.store_errors
    );
    assert_eq!(
        raw_laned.profile.store_error,
        raw_serial.profile.store_error
    );
    assert_eq!(raw_laned.profile, raw_serial.profile);

    for dir in [serial_dir, laned_dir, raw_serial_dir, raw_laned_dir] {
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn lanes_compose_with_the_seal_pipeline() {
    // Both parallel layers on at once: laned simulation engine feeding the
    // pipelined (off-critical-path) seal queue, on a shared pool. Still
    // byte-identical to the fully serial run.
    let serial_dir = tmp_dir("compose-serial");
    let serial = run_lane(&serial_dir, 1, false, None);
    let model = serial.profile.model.clone();
    let serial_bytes = artifact_bytes(&serial_dir, &model);

    tpupoint_par::set_threads(4);
    let both_dir = tmp_dir("compose-both");
    let both = run_lane(&both_dir, 2, true, None);
    tpupoint_par::set_threads(0);
    assert_eq!(both.report, serial.report);
    assert_eq!(both.profile, serial.profile);
    for ((file, a), (_, b)) in serial_bytes.iter().zip(artifact_bytes(&both_dir, &model)) {
        assert!(*a == b, "{file} diverged with lanes + seal pipeline");
    }

    std::fs::remove_dir_all(&serial_dir).unwrap();
    std::fs::remove_dir_all(&both_dir).unwrap();
}
