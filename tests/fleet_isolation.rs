//! Fleet-mode tenant isolation: one tenant's store faults must neither
//! poison a healthy neighbour's `/healthz` attribution nor perturb its
//! recorded profile.
//!
//! Two jobs run concurrently in one fleet — `noisy` writes through a
//! seeded fault-injecting store, `steady` runs clean. The fleet must:
//!
//! * attribute every degradation to `noisy` and its tenant alone;
//! * keep `steady`'s per-job series at zero errors on the shared scrape;
//! * record `steady`'s JSONL byte-identical to a solo batch
//!   [`TpuPoint::profile`] of the same workload, scale, and seed.

use std::io::{Read, Write};
use std::path::Path;
use tpupoint::prelude::*;
use tpupoint::workloads::{build, BuildOptions, WorkloadId};
use tpupoint::FleetJobRequest;

fn steady_config() -> JobConfig {
    build(
        WorkloadId::BertMrpc,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.1,
            seed: 42,
            ..BuildOptions::default()
        },
    )
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connects");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn read_records(dir: &Path, file: &str) -> Vec<u8> {
    std::fs::read(dir.join(file)).unwrap_or_else(|e| panic!("{}/{file}: {e}", dir.display()))
}

/// The value of `series` on the scrape line carrying `label`, if any.
fn series_value(scrape: &str, series: &str, label: &str) -> Option<f64> {
    scrape
        .lines()
        .find(|line| line.starts_with(series) && line.contains(label))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|value| value.parse().ok())
}

#[test]
fn faulty_tenant_never_degrades_its_neighbour() {
    let base = std::env::temp_dir().join(format!("tpupoint-fleet-iso-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let solo_dir = base.join("solo");
    let fleet_dir = base.join("fleet");

    // The reference: a solo batch profile of the clean workload.
    let solo = TpuPoint::builder()
        .analyzer(true)
        .output_dir(&solo_dir)
        .build()
        .profile(steady_config())
        .expect("solo profile");
    assert_eq!(solo.profile.store_errors, 0);

    // The fleet: the same clean job next to a fault-injected neighbour,
    // running concurrently at batch speed.
    let session = TpuPoint::builder()
        .analyzer(true)
        .output_dir(&fleet_dir)
        .serve("127.0.0.1:0")
        .serve_pace_us(0)
        .serve_real_backoff(false)
        .build()
        .serve_fleet()
        .expect("fleet starts");
    session
        .submit(
            FleetJobRequest::new(steady_config())
                .id("steady")
                .tenant("alice"),
        )
        .expect("admits steady");
    session
        .submit(
            FleetJobRequest::new(steady_config())
                .id("noisy")
                .tenant("mallory")
                .store_fault(0.6, 11),
        )
        .expect("admits noisy");
    session.wait_jobs_idle();

    for id in ["steady", "noisy"] {
        let status = session.status(id).expect("known job");
        assert_eq!(
            status.phase,
            tpupoint::runtime::JobPhase::Completed,
            "{id}: {:?}",
            status.error
        );
    }

    // Health: degraded overall, but every cause names the noisy job and
    // its tenant — the healthy tenant is never blamed.
    let health = session.health();
    assert!(
        !health.degradations.is_empty(),
        "the fault injection must surface degradations"
    );
    for cause in &health.degradations {
        assert!(
            cause.contains("job noisy (tenant mallory)"),
            "degradation not attributed to the noisy tenant: {cause}"
        );
        assert!(
            !cause.contains("steady") && !cause.contains("alice"),
            "{cause}"
        );
    }
    let addr = session.addr();
    let healthz = get(addr, "/healthz");
    assert!(healthz.starts_with("HTTP/1.1 503"), "{healthz}");
    assert!(healthz.contains("job noisy (tenant mallory)"), "{healthz}");
    assert!(!healthz.contains("alice"), "{healthz}");

    // The shared scrape keeps the error series apart per job.
    let scrape = get(addr, "/metrics");
    let errors = |label: &str| {
        series_value(&scrape, "tpupoint_profiler_store_errors{", label)
            .unwrap_or_else(|| panic!("no store_errors series for {label}:\n{scrape}"))
    };
    assert_eq!(errors("job=\"steady\""), 0.0);
    assert!(errors("job=\"noisy\"") > 0.0);
    assert!(errors("job=\"fleet\"") > 0.0, "aggregate sums the errors");

    // The healthy job's sharded records are byte-identical to the solo
    // batch run: concurrency and the neighbour's faults are invisible.
    let steady_records = fleet_dir.join("jobs/steady/records");
    let solo_records = solo_dir.join("records");
    for file in ["steps.jsonl", "windows.jsonl"] {
        assert_eq!(
            read_records(&solo_records, file),
            read_records(&steady_records, file),
            "{file} must be byte-identical to the solo run"
        );
    }

    session.request_quit();
    session.wait().expect("drains");
    std::fs::remove_dir_all(&base).unwrap();
}
