//! Serve-mode loopback integration: scrape a live `tpupoint serve` run
//! over real TCP, shut it down gracefully, and prove the recorded JSONL
//! is byte-identical to a batch run of the same seed.

use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use tpupoint::prelude::*;
use tpupoint::workloads::{build, BuildOptions, WorkloadId};

fn request(addr: SocketAddr, line: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to serve endpoint");
    write!(stream, "{line} HTTP/1.1\r\nHost: loopback\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("complete response");
    (
        head.lines().next().unwrap_or("").to_owned(),
        body.to_owned(),
    )
}

fn config() -> JobConfig {
    // Scale 0.3 gives the run enough steps (116, ~15 streaming updates)
    // for the live phase tracker to latch stability before shutdown.
    build(
        WorkloadId::BertMrpc,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.3,
            ..BuildOptions::default()
        },
    )
}

/// Extracts the integer value of `"key": N` from a flat JSON body.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let tail = body.split(&format!("\"{key}\": ")).nth(1)?;
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[test]
fn serve_scrapes_live_and_shutdown_matches_batch_byte_for_byte() {
    let base = std::env::temp_dir().join(format!("tpupoint-serve-loop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let serve_dir = base.join("serve");

    let tp = TpuPoint::builder()
        .analyzer(true)
        .output_dir(&serve_dir)
        .serve("127.0.0.1:0")
        .serve_pace_us(300)
        .build();
    let session = tp.serve(config()).expect("serve starts");
    let addr = session.addr();

    // Live scrape while the paced job is still running.
    let (status, metrics) = request(addr, "GET /metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let series: BTreeSet<&str> = metrics
        .lines()
        .filter(|line| !line.starts_with('#') && !line.is_empty())
        .map(|line| line.split(['{', ' ']).next().expect("series name"))
        .collect();
    assert!(
        series.len() >= 10,
        "expected >= 10 Prometheus series, got {}: {series:?}",
        series.len()
    );
    assert!(
        series.contains("tpupoint_profiler_store_errors"),
        "{series:?}"
    );
    assert!(
        series.contains("tpupoint_profiler_seal_latency_us_bucket"),
        "seal-pipeline histogram missing: {series:?}"
    );
    assert!(
        metrics.contains("workload=\"BERT\""),
        "scrape carries the workload label"
    );

    let (status, health) = request(addr, "GET /healthz");
    assert_eq!(status, "HTTP/1.1 200 OK", "no faults injected: {health}");
    assert!(health.starts_with("ok"), "{health}");

    let (status, live) = request(addr, "GET /status");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(live.contains("\"step\""), "{live}");
    assert!(live.contains("\"ols_phase\""), "{live}");
    assert!(live.contains("\"stream_phases\""), "{live}");
    assert!(live.contains("\"stream_stable_for\""), "{live}");

    // The live phase endpoint must report a non-empty *stable* phase set
    // before shutdown: poll until the streaming analyzer latches.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let phases = loop {
        let (status, body) = request(addr, "GET /phases");
        assert_eq!(status, "HTTP/1.1 200 OK");
        if json_u64(&body, "stable_windows").is_some_and(|w| w >= 3) {
            break body;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "streaming analyzer never latched stability; last /phases: {body}"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    };
    assert!(
        phases.contains("\"id\": 0"),
        "non-empty phase set: {phases}"
    );
    assert!(phases.contains("\"centroid\": ["), "{phases}");
    assert!(phases.contains("\"occupancy\": "), "{phases}");
    assert!(
        json_u64(&phases, "steps_assigned").is_some_and(|n| n > 0),
        "{phases}"
    );

    // The per-phase series reached the Prometheus exposition too.
    let (_, metrics) = request(addr, "GET /metrics");
    assert!(
        metrics.contains("tpupoint_analyzer_phase_occupancy{") && metrics.contains("phase=\"0\""),
        "per-phase occupancy family missing from /metrics"
    );
    assert!(
        metrics.contains("tpupoint_analyzer_phase_stability"),
        "stability gauge missing from /metrics"
    );

    // Graceful shutdown over HTTP, then wait for the sealed run.
    let (status, body) = request(addr, "POST /quit");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "quitting\n");
    let run = session.wait().expect("run completes after quit");
    assert!(run.report.steps_completed > 0);

    // Zero `.part` files: everything the run produced is sealed.
    let records = serve_dir.join("records");
    let leftovers: Vec<String> = std::fs::read_dir(&records)
        .expect("records directory exists")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".part"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "unsealed files after quit: {leftovers:?}"
    );
    assert!(
        serve_dir.join("metrics.prom").exists(),
        "final scrape flushed"
    );

    // The wall-clock lane only adds pacing and (optionally) backoff
    // sleeps; the recorded profile must be byte-identical to a batch
    // run of the same configuration and seed.
    let batch_dir = base.join("batch");
    let batch = TpuPoint::builder()
        .analyzer(true)
        .output_dir(&batch_dir)
        .build();
    batch.profile(config()).expect("batch run");
    for file in ["steps.jsonl", "windows.jsonl"] {
        let served = std::fs::read(records.join(file)).expect(file);
        let batched = std::fs::read(batch_dir.join("records").join(file)).expect(file);
        assert_eq!(served, batched, "{file} diverged between serve and batch");
    }

    std::fs::remove_dir_all(&base).unwrap();
}
