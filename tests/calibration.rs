//! Integration: the calibrated platform stays on the paper's Figure 10/11
//! numbers. Guards the constants in `tpupoint-workloads` against
//! regressions from substrate changes — if one of these fails after an
//! intentional model change, re-run the calibration probe
//! (`cargo run -p tpupoint-bench --release --bin probe`) and update the
//! suite's constants.

use tpupoint::prelude::*;

/// `(workload, idle v2, mxu v2)` — the calibration targets.
const TARGETS: [(WorkloadId, f64, f64); 9] = [
    (WorkloadId::BertMrpc, 0.40, 0.18),
    (WorkloadId::BertSquad, 0.33, 0.22),
    (WorkloadId::BertCola, 0.42, 0.17),
    (WorkloadId::BertMnli, 0.33, 0.22),
    (WorkloadId::DcganCifar10, 0.50, 0.12),
    (WorkloadId::DcganMnist, 0.55, 0.10),
    (WorkloadId::QanetSquad, 0.30, 0.16),
    (WorkloadId::RetinanetCoco, 0.35, 0.46),
    (WorkloadId::ResnetImagenet, 0.18, 0.45),
];

fn profile(id: WorkloadId, generation: TpuGeneration) -> Profile {
    let tp = TpuPoint::builder().analyzer(false).build();
    let cfg = build(
        id,
        generation,
        &BuildOptions {
            scale: id.default_sim_scale(),
            ..BuildOptions::default()
        },
    );
    tp.profile(cfg).expect("in-memory profiling").profile
}

#[test]
fn tpuv2_per_workload_calibration_holds() {
    for (id, idle_t, mxu_t) in TARGETS {
        let p = profile(id, TpuGeneration::V2);
        let idle = p.steady_tpu_idle_fraction();
        let mxu = p.steady_mxu_utilization();
        assert!(
            (idle - idle_t).abs() < 0.03,
            "{id}: idle {idle:.3} vs target {idle_t:.3}"
        );
        assert!(
            (mxu - mxu_t).abs() < 0.03,
            "{id}: mxu {mxu:.3} vs target {mxu_t:.3}"
        );
    }
}

#[test]
fn suite_averages_match_the_papers_headline_numbers() {
    // Paper: idle 38.90% v2 / 43.53% v3; MXU 22.72% v2 / 11.34% v3.
    let mut idle = (0.0, 0.0);
    let mut mxu = (0.0, 0.0);
    for (id, _, _) in TARGETS {
        let v2 = profile(id, TpuGeneration::V2);
        let v3 = profile(id, TpuGeneration::V3);
        idle.0 += v2.steady_tpu_idle_fraction();
        idle.1 += v3.steady_tpu_idle_fraction();
        mxu.0 += v2.steady_mxu_utilization();
        mxu.1 += v3.steady_mxu_utilization();
    }
    let n = TARGETS.len() as f64;
    assert!(
        (idle.0 / n - 0.389).abs() < 0.04,
        "v2 idle avg {}",
        idle.0 / n
    );
    assert!(
        (idle.1 / n - 0.435).abs() < 0.04,
        "v3 idle avg {}",
        idle.1 / n
    );
    assert!((mxu.0 / n - 0.227).abs() < 0.03, "v2 mxu avg {}", mxu.0 / n);
    assert!((mxu.1 / n - 0.113).abs() < 0.03, "v3 mxu avg {}", mxu.1 / n);
}

#[test]
fn every_workload_keeps_three_ols_phases_at_70() {
    for (id, _, _) in TARGETS {
        let p = profile(id, TpuGeneration::V2);
        let phases = Analyzer::new(&p).ols_phases(0.7);
        assert!(
            (3..=4).contains(&phases.len()),
            "{id}: {} phases at the 70% threshold",
            phases.len()
        );
    }
}
