//! Integration: profile → analyze round trips across the workload suite.

use tpupoint::prelude::*;

fn small(id: WorkloadId) -> tpupoint::runtime::JobConfig {
    build(
        id,
        TpuGeneration::V2,
        &BuildOptions {
            scale: id.default_sim_scale(),
            ..BuildOptions::default()
        },
    )
}

#[test]
fn every_workload_profiles_and_analyzes() {
    let tp = TpuPoint::builder().analyzer(false).build();
    for id in WorkloadId::paper_nine() {
        let run = tp.profile(small(id)).expect("profiling");
        assert!(run.report.steps_completed > 0, "{id}");
        let analysis = tp.analyze(&run.profile).expect("analysis");
        assert!(
            (2..=8).contains(&analysis.ols_phases.len()),
            "{id}: {} OLS phases at 70%",
            analysis.ols_phases.len()
        );
        assert!(
            analysis.ols_phases.coverage_top(3) > 0.95,
            "{id}: top-3 coverage {}",
            analysis.ols_phases.coverage_top(3)
        );
    }
}

#[test]
fn dominant_phase_shows_the_papers_bottleneck_operators() {
    let tp = TpuPoint::builder().analyzer(false).build();
    for id in [
        WorkloadId::BertMrpc,
        WorkloadId::DcganCifar10,
        WorkloadId::QanetSquad,
    ] {
        let run = tp.profile(small(id)).expect("profiling");
        let analyzer = Analyzer::new(&run.profile);
        let phases = analyzer.ols_phases(0.7);
        let top = analyzer
            .top_operators_of_longest(&phases, 5)
            .expect("phases exist");
        let tpu_names: Vec<&str> = top.tpu.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(
            tpu_names.contains(&"fusion"),
            "{id}: fusion should be a top TPU op, got {tpu_names:?}"
        );
        let host_names: Vec<&str> = top.host.iter().map(|(n, _, _)| n.as_str()).collect();
        assert!(
            host_names.contains(&"OutfeedDequeueTuple")
                || host_names.contains(&"TransferBufferToInfeedLocked"),
            "{id}: infeed/outfeed exchange should top host ops, got {host_names:?}"
        );
    }
}

#[test]
fn profiler_metrics_track_runtime_ground_truth() {
    let tp = TpuPoint::builder()
        .analyzer(false)
        .profiling_overhead(0.0)
        .build();
    for id in [WorkloadId::BertCola, WorkloadId::ResnetImagenet] {
        let run = tp.profile(small(id)).expect("profiling");
        let profiler_idle = run.profile.steady_tpu_idle_fraction();
        let runtime_idle = run.report.tpu_idle_fraction();
        assert!(
            (profiler_idle - runtime_idle).abs() < 0.08,
            "{id}: profiler {profiler_idle} vs runtime {runtime_idle}"
        );
    }
}

#[test]
fn v3_halves_mxu_utilization_and_raises_idle() {
    let tp = TpuPoint::builder().analyzer(false).build();
    for id in [WorkloadId::BertMrpc, WorkloadId::DcganMnist] {
        let opts = BuildOptions {
            scale: id.default_sim_scale(),
            ..BuildOptions::default()
        };
        let v2 = tp.profile(build(id, TpuGeneration::V2, &opts)).unwrap();
        let v3 = tp.profile(build(id, TpuGeneration::V3, &opts)).unwrap();
        let ratio = v3.profile.steady_mxu_utilization() / v2.profile.steady_mxu_utilization();
        assert!(
            (0.4..0.62).contains(&ratio),
            "{id}: v3/v2 MXU ratio {ratio}"
        );
        assert!(
            v3.profile.steady_tpu_idle_fraction() > v2.profile.steady_tpu_idle_fraction(),
            "{id}: idle should rise on TPUv3"
        );
    }
}

#[test]
fn clustering_methods_agree_on_few_dominant_phases() {
    let tp = TpuPoint::builder().analyzer(false).build();
    let run = tp.profile(small(WorkloadId::DcganCifar10)).unwrap();
    let analyzer = Analyzer::new(&run.profile);
    // k-means at the elbow and OLS at 70% both find a dominant phase
    // covering most of the run.
    let kmeans = analyzer.kmeans_phases(5);
    let ols = analyzer.ols_phases(0.7);
    let dbscan = analyzer.dbscan_phases(10).expect("fits memory limit");
    for (name, floor, set) in [
        ("kmeans", 0.8, &kmeans),
        ("ols", 0.8, &ols),
        ("dbscan", 0.8, &dbscan),
    ] {
        assert!(
            set.coverage_top(3) > floor,
            "{name}: top-3 coverage {}",
            set.coverage_top(3)
        );
    }
}

#[test]
fn chrome_trace_is_valid_json_with_both_tracks() {
    let tp = TpuPoint::builder().analyzer(false).build();
    let run = tp.profile(small(WorkloadId::BertMrpc)).unwrap();
    let analyzer = Analyzer::new(&run.profile);
    let phases = analyzer.ols_phases(0.7);
    let mut buf = Vec::new();
    analyzer.write_chrome_trace(&phases, &mut buf).unwrap();
    let value: serde_json::Value = serde_json::from_slice(&buf).expect("valid JSON");
    let events = value["traceEvents"].as_array().expect("trace events");
    assert!(events.iter().any(|e| e["cat"] == "profile"));
    assert!(events.iter().any(|e| e["cat"] == "phase"));
}

#[test]
fn profile_serialization_round_trips_through_json() {
    let tp = TpuPoint::builder().analyzer(false).build();
    let run = tp.profile(small(WorkloadId::DcganMnist)).unwrap();
    let mut buf = Vec::new();
    run.profile.save_json(&mut buf).unwrap();
    let loaded = Profile::load_json(buf.as_slice()).unwrap();
    assert_eq!(loaded, run.profile);
    // The reloaded profile analyzes identically.
    let a = Analyzer::new(&run.profile).ols_phases(0.7);
    let b = Analyzer::new(&loaded).ols_phases(0.7);
    assert_eq!(a, b);
}
