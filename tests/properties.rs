//! Property-based tests spanning the stack: invariants that must hold for
//! arbitrary (bounded) configurations.

use proptest::prelude::*;
use tpupoint::analyzer::{ols, Analyzer};
use tpupoint::prelude::*;
use tpupoint::profiler::StepRecord;
use tpupoint::sim::{OpId, SimDuration, SimTime, Track};

fn record_from_ops(step: u64, ops: &[u32]) -> StepRecord {
    let mut r = StepRecord::new(step);
    for (i, &op) in ops.iter().enumerate() {
        r.absorb(
            OpId(op),
            Track::TpuCore(0),
            SimTime::from_micros(step * 1_000 + i as u64),
            SimDuration::from_micros(5 + op as u64),
            SimDuration::ZERO,
        );
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equation 1 is symmetric, bounded, and 1 on self.
    #[test]
    fn step_similarity_axioms(
        a in proptest::collection::vec(0u32..24, 1..16),
        b in proptest::collection::vec(0u32..24, 1..16),
    ) {
        let ra = record_from_ops(1, &a);
        let rb = record_from_ops(2, &b);
        let sab = ols::step_similarity(&ra, &rb);
        let sba = ols::step_similarity(&rb, &ra);
        prop_assert!((sab - sba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&sab));
        prop_assert_eq!(ols::step_similarity(&ra, &ra), 1.0);
    }

    /// OLS segments form a contiguous exact cover of the records for any
    /// threshold.
    #[test]
    fn ols_segments_cover_exactly(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..12, 1..8), 1..40),
        threshold in 0.0f64..=1.0,
    ) {
        let records: Vec<StepRecord> = sets
            .iter()
            .enumerate()
            .map(|(i, ops)| record_from_ops(i as u64, ops))
            .collect();
        let segments = ols::scan(&records, &ols::OlsConfig { threshold });
        prop_assert_eq!(segments.first().map(|s| s.start), Some(0));
        prop_assert_eq!(segments.last().map(|s| s.end), Some(records.len()));
        for pair in segments.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start);
        }
        let covered: usize = segments.iter().map(|s| s.end - s.start).sum();
        prop_assert_eq!(covered, records.len());
    }

    /// `Segment::len` and `Segment::is_empty` agree for ANY bounds,
    /// including the inverted ones the scan never produces: `len` must
    /// saturate (no underflow panic) exactly where `is_empty` is true.
    #[test]
    fn segment_len_and_is_empty_are_consistent(
        start in 0usize..2_000,
        end in 0usize..2_000,
    ) {
        let segment = ols::Segment { start, end };
        prop_assert_eq!(segment.len(), end.saturating_sub(start));
        // The `len() == 0` comparison IS the property under test.
        #[allow(clippy::len_zero)]
        {
            prop_assert_eq!(segment.is_empty(), segment.len() == 0);
        }
        prop_assert_eq!(segment.is_empty(), start >= end);
    }

    /// Raising the threshold never reduces the number of OLS phases.
    #[test]
    fn ols_phase_count_is_monotone(
        sets in proptest::collection::vec(
            proptest::collection::vec(0u32..10, 1..8), 2..30),
    ) {
        let records: Vec<StepRecord> = sets
            .iter()
            .enumerate()
            .map(|(i, ops)| record_from_ops(i as u64, ops))
            .collect();
        let thresholds = [0.0, 0.25, 0.5, 0.75, 1.0];
        let counts = ols::threshold_sweep(&records, &thresholds);
        for pair in counts.windows(2) {
            prop_assert!(pair[1].1 >= pair[0].1, "{:?}", counts);
        }
    }
}

/// Simulator conservation: every planned step completes exactly once,
/// regardless of pipeline shape.
#[test]
fn steps_conserve_across_pipeline_shapes() {
    for (prefetch, read_ahead, infeed, threads) in
        [(1, 1, 1, 1), (2, 8, 4, 8), (64, 64, 16, 64), (1, 64, 1, 32)]
    {
        let mut cfg = build(
            WorkloadId::DcganMnist,
            TpuGeneration::V2,
            &BuildOptions {
                scale: 0.005,
                ..BuildOptions::default()
            },
        );
        cfg.pipeline.prefetch_depth = prefetch;
        cfg.pipeline.read_ahead = read_ahead;
        cfg.pipeline.infeed_queue_depth = infeed;
        cfg.pipeline.num_parallel_calls = threads;
        let plan_len = cfg.step_plan().len() as u64;
        let tp = TpuPoint::builder().analyzer(false).build();
        let run = tp.profile(cfg).expect("profiling");
        assert_eq!(
            run.report.steps_completed, plan_len,
            "pipeline ({prefetch},{read_ahead},{infeed},{threads}) lost steps"
        );
    }
}

/// Phase coverage fractions always sum to at most 1 and the full set
/// covers everything.
#[test]
fn coverage_fractions_are_a_partition() {
    let tp = TpuPoint::builder().analyzer(false).build();
    let cfg = build(
        WorkloadId::BertCola,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.2,
            ..BuildOptions::default()
        },
    );
    let run = tp.profile(cfg).unwrap();
    let analyzer = Analyzer::new(&run.profile);
    for threshold in [0.0, 0.5, 0.7, 0.9, 1.0] {
        let set = analyzer.ols_phases(threshold);
        let total: f64 = set.top_coverages(usize::MAX).iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "threshold {threshold}: {total}");
        let member_steps: usize = set.phases.iter().map(|p| p.steps.len()).sum();
        assert_eq!(member_steps, run.profile.steps.len());
    }
}

/// k-means SSE is monotonically nonincreasing in k on real profiles.
#[test]
fn kmeans_sse_monotone_on_real_profile() {
    let tp = TpuPoint::builder().analyzer(false).build();
    let cfg = build(
        WorkloadId::DcganCifar10,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.01,
            ..BuildOptions::default()
        },
    );
    let run = tp.profile(cfg).unwrap();
    let analyzer = Analyzer::new(&run.profile);
    let sweep = analyzer.kmeans_sweep(1..=10);
    for pair in sweep.windows(2) {
        assert!(pair[1].1 <= pair[0].1 + 1e-6, "{sweep:?}");
    }
}
