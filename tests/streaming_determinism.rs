//! Integration: the streaming analyzer's phase timeline is bit-identical
//! for any worker-pool size, converges to the offline k-means phase
//! assignment within bounded disagreement, and its stability latch marks
//! a prefix that still characterizes the run (the `--prefix-stable`
//! contract).

use std::collections::BTreeSet;

use tpupoint::analyzer::features::MAX_DIMS;
use tpupoint::analyzer::{
    kmeans, replay, Analyzer, AnalyzerOptions, FeatureMatrix, KmeansConfig, StreamingConfig,
    StreamingReplay,
};
use tpupoint::prelude::*;

fn profile_of(id: WorkloadId, scale: f64) -> Profile {
    let config = build(
        id,
        TpuGeneration::V2,
        &BuildOptions {
            scale,
            seed: 7,
            ..BuildOptions::default()
        },
    );
    let tp = TpuPoint::builder().analyzer(false).build();
    tp.profile(config).unwrap().profile
}

/// Everything externally observable about one replay, comparable across
/// pool sizes: the rendered `/phases` JSON (centroids, occupancy,
/// transitions, stability) plus the raw per-step labels and the latch.
fn timeline(profile: &Profile) -> (String, Vec<(u64, usize)>, Option<u64>) {
    let StreamingReplay {
        analyzer,
        stable_at_step,
        ..
    } = replay(profile, StreamingConfig::default());
    let labels = analyzer
        .assignments()
        .iter()
        .map(|(&step, &label)| (step, label))
        .collect();
    (analyzer.report().to_json(), labels, stable_at_step)
}

#[test]
fn thread_count_never_changes_the_streaming_timeline() {
    for (id, scale) in [
        (WorkloadId::BertMrpc, 0.3),
        (WorkloadId::DcganCifar10, 0.05),
    ] {
        let profile = profile_of(id, scale);
        tpupoint_par::set_threads(1);
        let serial = timeline(&profile);
        for threads in [2, 4, 8] {
            tpupoint_par::set_threads(threads);
            let parallel = timeline(&profile);
            assert_eq!(parallel, serial, "{id:?} diverged at {threads} threads");
        }
        tpupoint_par::set_threads(0);
        assert_eq!(
            serial.1.len(),
            profile.steps.len(),
            "every recorded step is assigned a phase"
        );
    }
}

/// Fraction of steps whose streaming label disagrees with the offline
/// k-means label, after greedily aligning the two label alphabets by
/// confusion-matrix overlap (cluster ids are arbitrary on both sides).
fn offline_disagreement(profile: &Profile) -> f64 {
    let streaming = replay(profile, StreamingConfig::default());
    let matrix = FeatureMatrix::from_profile(profile).reduced(MAX_DIMS);
    let offline = kmeans::run(&matrix, &KmeansConfig::default());
    let assignments = streaming.analyzer.assignments();
    let mut counts: Vec<((usize, usize), usize)> = Vec::new();
    let mut total = 0usize;
    for (i, step) in matrix.steps.iter().enumerate() {
        let label = *assignments.get(step).expect("streaming assigned the step");
        let pair = (label, offline.assignments[i]);
        match counts.iter_mut().find(|(p, _)| *p == pair) {
            Some((_, c)) => *c += 1,
            None => counts.push((pair, 1)),
        }
        total += 1;
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let (mut used_s, mut used_o) = (BTreeSet::new(), BTreeSet::new());
    let mut matched = 0usize;
    for ((s, o), c) in counts {
        if !used_s.contains(&s) && !used_o.contains(&o) {
            used_s.insert(s);
            used_o.insert(o);
            matched += c;
        }
    }
    1.0 - matched as f64 / total.max(1) as f64
}

#[test]
fn streaming_matches_offline_phase_assignment_within_ten_percent() {
    for (id, scale) in [
        (WorkloadId::BertMrpc, 0.3),
        (WorkloadId::DcganCifar10, 0.05),
    ] {
        let profile = profile_of(id, scale);
        let disagreement = offline_disagreement(&profile);
        assert!(
            disagreement <= 0.10,
            "{id:?}: streaming vs offline disagreement {:.1}% exceeds 10%",
            disagreement * 100.0
        );
    }
}

#[test]
fn stable_prefix_still_characterizes_the_run() {
    let profile = profile_of(WorkloadId::BertMrpc, 0.3);
    let replayed = replay(&profile, StreamingConfig::default());
    let step = replayed
        .stable_at_step
        .expect("a steady training run stabilizes");
    let prefix = profile.prefix_through(step);
    assert!(
        prefix.steps.len() < profile.steps.len(),
        "stability latched on a strict prefix ({} of {} steps)",
        prefix.steps.len(),
        profile.steps.len()
    );
    let analyzer = Analyzer::with_options(&prefix, AnalyzerOptions::default());
    let set = analyzer.kmeans_phases(5);
    assert!(
        set.coverage_top(3) >= 0.80,
        "top-3 coverage on the stable prefix fell to {:.2}",
        set.coverage_top(3)
    );
}
