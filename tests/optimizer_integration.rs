//! Integration: TPUPoint-Optimizer end to end on real workloads.

use tpupoint::optimizer::{TpuPointOptimizer, TrialOutcome};
use tpupoint::prelude::*;

fn naive(id: WorkloadId, scale: f64) -> JobConfig {
    build(
        id,
        TpuGeneration::V2,
        &BuildOptions {
            scale,
            variant: Variant::Naive,
            ..BuildOptions::default()
        },
    )
}

#[test]
fn optimizer_rescues_a_naive_qanet() {
    let report = TpuPointOptimizer::new(naive(WorkloadId::QanetSquad, 0.002)).optimize();
    assert!(report.critical_phase_detected);
    assert!(
        report.throughput_speedup() > 1.5,
        "naive pipelines leave large gains: {}",
        report.throughput_speedup()
    );
    assert!(
        report.optimized.tpu_idle_fraction() < report.baseline.tpu_idle_fraction(),
        "idle must fall"
    );
    assert!(
        report.optimized.mxu_utilization() > report.baseline.mxu_utilization(),
        "MXU utilization must rise"
    );
    assert!(report.output_preserved());
}

#[test]
fn optimizer_accepts_thread_increases_on_naive_pipelines() {
    let report = TpuPointOptimizer::new(naive(WorkloadId::RetinanetCoco, 0.004)).optimize();
    let accepted: Vec<_> = report
        .trials
        .iter()
        .filter(|t| t.outcome == TrialOutcome::Accepted)
        .collect();
    assert!(!accepted.is_empty(), "some candidate must win");
    assert!(
        report.tuned_pipeline.num_parallel_calls > report.initial_pipeline.num_parallel_calls,
        "single-threaded decode is the naive pipeline's biggest sin"
    );
}

#[test]
fn optimizer_never_touches_output_affecting_knobs() {
    let cfg = naive(WorkloadId::QanetSquad, 0.002);
    let shuffle_before = cfg.pipeline.shuffle_buffer;
    let report = TpuPointOptimizer::new(cfg).optimize();
    assert_eq!(report.tuned_pipeline.shuffle_buffer, shuffle_before);
    assert!(report
        .discovery
        .excluded
        .iter()
        .any(|(p, _)| p.to_string() == "shuffle_buffer"));
}

#[test]
fn tuned_defaults_still_leave_the_papers_headroom() {
    // The reference (tuned) pipelines on long-running workloads gain the
    // paper's ~1.1-1.2x from dynamic tuning.
    let cfg = build(
        WorkloadId::QanetSquad,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.004,
            ..BuildOptions::default()
        },
    );
    let report = TpuPointOptimizer::new(cfg).optimize();
    let speedup = report.throughput_speedup();
    assert!(
        (1.02..1.4).contains(&speedup),
        "tuned-default speedup {speedup} out of the paper's band"
    );
}

#[test]
fn optimizer_overhead_is_bounded() {
    let report = TpuPointOptimizer::new(naive(WorkloadId::QanetSquad, 0.002)).optimize();
    // Online tuning overhead must be far below the baseline run itself.
    assert!(
        report.tuning_overhead.as_secs_f64() < report.baseline.session_wall.as_secs_f64(),
        "overhead {} vs run {}",
        report.tuning_overhead,
        report.baseline.session_wall
    );
}
