//! Integration: the whole stack is deterministic for a fixed seed and
//! responsive to seed/config changes.

use tpupoint::prelude::*;

fn config(seed: u64) -> JobConfig {
    build(
        WorkloadId::BertMrpc,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.3,
            seed,
            ..BuildOptions::default()
        },
    )
}

#[test]
fn identical_seeds_produce_identical_profiles() {
    let tp = TpuPoint::builder().analyzer(false).build();
    let a = tp.profile(config(7)).unwrap();
    let b = tp.profile(config(7)).unwrap();
    assert_eq!(a.report, b.report);
    assert_eq!(a.profile, b.profile);
}

#[test]
fn different_seeds_change_jitter_but_not_results() {
    let tp = TpuPoint::builder().analyzer(false).build();
    let a = tp.profile(config(1)).unwrap();
    let b = tp.profile(config(2)).unwrap();
    // Timing differs...
    assert_ne!(a.report.session_wall, b.report.session_wall);
    // ...but structure does not: same steps, same checkpoints.
    assert_eq!(a.report.steps_completed, b.report.steps_completed);
    assert_eq!(
        a.report
            .checkpoints
            .iter()
            .map(|(s, _)| *s)
            .collect::<Vec<_>>(),
        b.report
            .checkpoints
            .iter()
            .map(|(s, _)| *s)
            .collect::<Vec<_>>()
    );
}

#[test]
fn analysis_is_deterministic_for_a_profile() {
    let tp = TpuPoint::builder().analyzer(false).build();
    let run = tp.profile(config(5)).unwrap();
    let a1 = Analyzer::new(&run.profile);
    let a2 = Analyzer::new(&run.profile);
    assert_eq!(a1.ols_phases(0.7), a2.ols_phases(0.7));
    assert_eq!(a1.kmeans_phases(5), a2.kmeans_phases(5));
    assert_eq!(a1.kmeans_sweep(1..=8), a2.kmeans_sweep(1..=8));
}

#[test]
fn seed_changes_never_change_program_output() {
    // The output digest covers semantics, not timing; but the seed IS part
    // of training semantics (initialization), so different seeds differ.
    let tp = TpuPoint::builder().analyzer(false).build();
    let a = tp.profile(config(1)).unwrap();
    let b = tp.profile(config(2)).unwrap();
    assert_ne!(a.report.output_digest, b.report.output_digest);
    let a2 = tp.profile(config(1)).unwrap();
    assert_eq!(a.report.output_digest, a2.report.output_digest);
    assert_eq!(a.report.final_loss, a2.report.final_loss);
}
