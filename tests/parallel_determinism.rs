//! Integration: analyzer results are bit-identical for any worker-pool
//! size. Phase boundaries, elbow picks, and DBSCAN noise ratios must
//! never depend on how many threads happen to run the sweeps.

use tpupoint::analyzer::{kmeans, Analyzer, AnalyzerOptions};
use tpupoint::prelude::*;

fn profile_of(id: WorkloadId, scale: f64) -> Profile {
    let config = build(
        id,
        TpuGeneration::V2,
        &BuildOptions {
            scale,
            seed: 7,
            ..BuildOptions::default()
        },
    );
    let tp = TpuPoint::builder().analyzer(false).build();
    tp.profile(config).unwrap().profile
}

/// Everything the analyzer derives from one profile at one pool size.
#[derive(Debug, PartialEq)]
struct Derived {
    kmeans_sweep: Vec<(usize, f64)>,
    elbow_k: Option<usize>,
    kmeans_phases: Vec<(u64, u64)>,
    dbscan_sweep: Vec<(usize, f64, usize)>,
    ols_phases: Vec<(u64, u64)>,
}

fn derive(profile: &Profile, threads: usize) -> Derived {
    let analyzer = Analyzer::with_options(
        profile,
        AnalyzerOptions {
            threads,
            ..AnalyzerOptions::default()
        },
    );
    let kmeans_sweep = analyzer.kmeans_sweep(1..=8);
    let elbow_k = kmeans::elbow_k(&kmeans_sweep);
    let boundaries = |set: &tpupoint::analyzer::PhaseSet| -> Vec<(u64, u64)> {
        set.phases
            .iter()
            .map(|p| (*p.steps.first().unwrap(), *p.steps.last().unwrap()))
            .collect()
    };
    Derived {
        elbow_k,
        kmeans_phases: boundaries(&analyzer.kmeans_phases(5)),
        dbscan_sweep: analyzer.dbscan_sweep().expect("within limits"),
        ols_phases: boundaries(&analyzer.ols_phases(0.7)),
        kmeans_sweep,
    }
}

#[test]
fn thread_count_never_changes_analysis_results() {
    for (id, scale) in [
        (WorkloadId::BertMrpc, 0.3),
        (WorkloadId::DcganCifar10, 0.05),
    ] {
        let profile = profile_of(id, scale);
        let serial = derive(&profile, 1);
        for threads in [2, 4, 8] {
            let parallel = derive(&profile, threads);
            assert_eq!(parallel, serial, "{id:?} diverged at {threads} threads");
        }
        tpupoint_par::set_threads(0);
        // The noise-ratio curve is monotone in min-samples regardless of
        // how the sweep was scheduled.
        for pair in serial.dbscan_sweep.windows(2) {
            assert!(pair[1].1 >= pair[0].1 - 1e-9, "{pair:?}");
        }
    }
}

#[test]
fn pipelined_profiling_feeds_identical_analysis() {
    let config = build(
        WorkloadId::DcganCifar10,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.05,
            seed: 7,
            ..BuildOptions::default()
        },
    );
    let dir = |tag: &str| {
        let d = std::env::temp_dir().join(format!("tpupoint-pardet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    };
    let serial_dir = dir("serial");
    let serial = TpuPoint::builder()
        .analyzer(true)
        .output_dir(&serial_dir)
        .build()
        .profile(config.clone())
        .unwrap();
    tpupoint_par::set_threads(4);
    let pipe_dir = dir("pipe");
    let pipelined = TpuPoint::builder()
        .analyzer(true)
        .output_dir(&pipe_dir)
        .pipeline_profiler(true)
        .build()
        .profile(config)
        .unwrap();
    assert_eq!(pipelined.profile, serial.profile);
    // The downstream analysis (itself running on the work-stealing pool)
    // sees no difference either.
    assert_eq!(derive(&pipelined.profile, 4), derive(&serial.profile, 1));
    tpupoint_par::set_threads(0);
    for d in [serial_dir, pipe_dir] {
        std::fs::remove_dir_all(&d).unwrap();
    }
}

#[test]
fn facade_threads_knob_matches_default_analysis() {
    let profile = profile_of(WorkloadId::BertMrpc, 0.2);
    let wide = TpuPoint::builder().analyzer(false).threads(4).build();
    let narrow = TpuPoint::builder().analyzer(false).threads(1).build();
    let a = wide.analyze(&profile).unwrap();
    let b = narrow.analyze(&profile).unwrap();
    tpupoint_par::set_threads(0);
    assert_eq!(a.ols_phases, b.ols_phases);
    assert_eq!(a.phase_checkpoints, b.phase_checkpoints);
}
