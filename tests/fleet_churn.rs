//! Fleet churn storm: many tenants submitting and cancelling jobs while
//! scrapers hammer the metrics plane.
//!
//! The scrape plane serves published snapshots, so this storm must not
//! deadlock, poison any lock, or bend the numbers:
//!
//! * every scrape and `/jobs` listing answers 200 throughout the storm;
//! * the `job="fleet"` aggregate counters are monotone non-decreasing
//!   across scrapes (published versions only move forward);
//! * `fleet.poisoned` stays at zero;
//! * the never-cancelled jobs' sealed records stay byte-identical to a
//!   solo batch profile of the same workload, scale, and seed.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tpupoint::prelude::*;
use tpupoint::workloads::{build, BuildOptions, WorkloadId};
use tpupoint::FleetJobRequest;

fn keep_config(seed: u64) -> JobConfig {
    build(
        WorkloadId::BertMrpc,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.05,
            seed,
            ..BuildOptions::default()
        },
    )
}

fn http(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connects");
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n"))
}

fn read_records(dir: &Path, file: &str) -> Vec<u8> {
    std::fs::read(dir.join(file)).unwrap_or_else(|e| panic!("{}/{file}: {e}", dir.display()))
}

/// The value of `series` on the scrape line carrying `label`, if any.
fn series_value(scrape: &str, series: &str, label: &str) -> Option<f64> {
    scrape
        .lines()
        .find(|line| line.starts_with(series) && line.contains(label))
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|value| value.parse().ok())
}

#[test]
fn churn_storm_keeps_the_scrape_plane_honest() {
    let base = std::env::temp_dir().join(format!("tpupoint-fleet-churn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Solo references for the jobs the storm never touches.
    let mut solo_records = Vec::new();
    for (tag, seed) in [("keep-a", 7), ("keep-b", 8)] {
        let dir = base.join("solo").join(tag);
        let solo = TpuPoint::builder()
            .analyzer(true)
            .output_dir(&dir)
            .build()
            .profile(keep_config(seed))
            .expect("solo profile");
        assert_eq!(solo.profile.store_errors, 0);
        solo_records.push(dir.join("records"));
    }

    let fleet_dir = base.join("fleet");
    let session = TpuPoint::builder()
        .analyzer(true)
        .output_dir(&fleet_dir)
        .serve("127.0.0.1:0")
        .serve_pace_us(0)
        .serve_real_backoff(false)
        .fleet_limits(tpupoint::runtime::FleetLimits {
            max_running: 3,
            max_queued: 256,
            per_tenant_active: 64,
            ..tpupoint::runtime::FleetLimits::default()
        })
        .fleet_memory_mib(512)
        .build()
        .serve_fleet()
        .expect("fleet starts");
    let addr = session.addr();

    for (tag, seed) in [("keep-a", 7u64), ("keep-b", 8u64)] {
        session
            .submit(
                FleetJobRequest::new(keep_config(seed))
                    .id(tag)
                    .tenant(tag),
            )
            .expect("admits keep job");
    }

    // Two scrapers poll /metrics and /jobs for the whole storm,
    // collecting the fleet aggregate counter for the monotonicity check.
    let storm_done = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..2)
        .map(|_| {
            let done = Arc::clone(&storm_done);
            std::thread::spawn(move || {
                let mut sealed = Vec::new();
                while !done.load(Ordering::SeqCst) {
                    let scrape = get(addr, "/metrics");
                    assert!(scrape.starts_with("HTTP/1.1 200"), "{scrape}");
                    if let Some(value) = series_value(
                        &scrape,
                        "tpupoint_profiler_windows_sealed{",
                        "job=\"fleet\"",
                    ) {
                        sealed.push(value);
                    }
                    let poisoned = series_value(&scrape, "tpupoint_fleet_poisoned", "")
                        .expect("fleet.poisoned series is preregistered");
                    assert_eq!(poisoned, 0.0, "a lock was poisoned during the storm");
                    let listing = get(addr, "/jobs");
                    assert!(listing.starts_with("HTTP/1.1 200"), "{listing}");
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                sealed
            })
        })
        .collect();

    // The storm: waves of short-lived tenants submitted through both the
    // in-process API and HTTP, then cancelled while queued or running.
    for wave in 0..3 {
        for i in 0..4 {
            session
                .submit(
                    FleetJobRequest::new(JobConfig::demo())
                        .id(format!("churn-{wave}-{i}"))
                        .tenant(format!("churn-{}", i % 2)),
                )
                .expect("admits churn job");
        }
        let body = format!(
            "{{\"workload\": \"bert-mrpc\", \"id\": \"http-{wave}\", \
             \"tenant\": \"http-tenant\", \"scale\": 0.02}}"
        );
        let response = http(
            addr,
            &format!(
                "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            ),
        );
        assert!(response.starts_with("HTTP/1.1 201"), "{response}");
        std::thread::sleep(std::time::Duration::from_millis(10));
        for i in 0..4 {
            let cancelled = http(
                addr,
                &format!("DELETE /jobs/churn-{wave}-{i} HTTP/1.1\r\nHost: t\r\n\r\n"),
            );
            assert!(cancelled.starts_with("HTTP/1.1 200"), "{cancelled}");
        }
    }

    session.wait_jobs_idle();
    storm_done.store(true, Ordering::SeqCst);
    for scraper in scrapers {
        let sealed = scraper.join().expect("scraper survives the storm");
        for pair in sealed.windows(2) {
            assert!(
                pair[1] >= pair[0],
                "fleet aggregate went backwards: {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    // Every job settled in a legal terminal phase; the survivors and the
    // HTTP-submitted jobs completed.
    for status in session.list() {
        assert!(
            matches!(
                status.phase,
                tpupoint::runtime::JobPhase::Completed
                    | tpupoint::runtime::JobPhase::Failed
                    | tpupoint::runtime::JobPhase::Cancelled
            ),
            "{}: {:?}",
            status.id,
            status.phase
        );
        if status.id.starts_with("keep") || status.id.starts_with("http") {
            assert_eq!(
                status.phase,
                tpupoint::runtime::JobPhase::Completed,
                "{}: {:?}",
                status.id,
                status.error
            );
        }
    }

    // Surviving jobs' records are byte-identical to their solo runs: the
    // storm never perturbed them.
    for (tag, solo) in ["keep-a", "keep-b"].iter().zip(&solo_records) {
        let fleet_records = fleet_dir.join("jobs").join(tag).join("records");
        for file in ["steps.jsonl", "windows.jsonl"] {
            assert_eq!(
                read_records(solo, file),
                read_records(&fleet_records, file),
                "{tag}/{file} must be byte-identical to the solo run"
            );
        }
    }

    session.request_quit();
    session.wait().expect("drains");
    std::fs::remove_dir_all(&base).unwrap();
}
