//! Integration: the binary segment store is a drop-in for the JSONL store.
//! The same job profiled through either format must produce the same
//! [`Profile`], and recovering either record directory must hand back the
//! same records with the same accounting — across every worker-pool size,
//! with the laned simulation engine, and under seeded store faults. The
//! format knob may change bytes on disk; it may never change answers.

use std::path::{Path, PathBuf};
use tpupoint::prelude::*;
use tpupoint::profiler::{recover_records, ProfilerOptions, RecoverySummary, StoreFormat};
use tpupoint::TpuPoint;

fn config() -> JobConfig {
    build(
        WorkloadId::DcganCifar10,
        TpuGeneration::V2,
        &BuildOptions {
            scale: 0.05,
            seed: 7,
            ..BuildOptions::default()
        },
    )
}

/// Small windows so every run streams real record traffic, and a tiny
/// segment budget so the binary lane rotates through several segments
/// instead of testing a single never-rotated file.
const SEGMENT_BYTES: u64 = 4 * 1024;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpupoint-fmt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_lane(
    dir: &Path,
    format: StoreFormat,
    lanes: usize,
    fault: Option<(f64, u64, u32)>,
) -> ProfiledRun {
    let mut builder = TpuPoint::builder()
        .analyzer(true)
        .output_dir(dir)
        .profiler_options(ProfilerOptions {
            window_max_events: 64,
            ..ProfilerOptions::default()
        })
        .store_format(format)
        .store_segment_bytes(SEGMENT_BYTES)
        .sim_lanes(lanes);
    builder = match fault {
        Some((prob, seed, retries)) => builder.store_fault(prob, seed).store_retries(retries),
        None => builder.store_retries(0),
    };
    builder.build().profile(config()).expect("profiling run")
}

fn recover(dir: &Path) -> RecoverySummary {
    recover_records(&dir.join("records")).expect("recoverable records dir")
}

#[test]
fn both_formats_yield_equal_profiles_across_the_thread_lane_matrix() {
    let baseline_dir = tmp_dir("baseline");
    let baseline = run_lane(&baseline_dir, StoreFormat::Jsonl, 1, None);
    assert!(
        !baseline.profile.windows.is_empty(),
        "fixture must seal windows"
    );

    for threads in [1usize, 2, 4, 8] {
        tpupoint_par::set_threads(threads);
        for lanes in [1usize, 2] {
            let jsonl_dir = tmp_dir(&format!("jsonl-t{threads}-l{lanes}"));
            let binary_dir = tmp_dir(&format!("binary-t{threads}-l{lanes}"));
            let jsonl = run_lane(&jsonl_dir, StoreFormat::Jsonl, lanes, None);
            let binary = run_lane(&binary_dir, StoreFormat::Binary, lanes, None);

            // Same answers in memory...
            assert_eq!(
                jsonl.profile, baseline.profile,
                "jsonl diverged from baseline at {threads} threads, {lanes} lanes"
            );
            assert_eq!(
                binary.profile, jsonl.profile,
                "format changed the profile at {threads} threads, {lanes} lanes"
            );
            assert_eq!(binary.report, jsonl.report);

            // ...and the same records back off disk, with clean accounting.
            let jr = recover(&jsonl_dir);
            let br = recover(&binary_dir);
            for (tag, summary) in [("jsonl", &jr), ("binary", &br)] {
                assert!(summary.sealed_files, "{tag}: sealed run");
                assert!(!summary.is_torn(), "{tag}: clean seal is not torn");
                assert_eq!(summary.missing_acknowledged(), (0, 0), "{tag}");
            }
            assert_eq!(jr.steps, br.steps, "recovered steps diverged");
            assert_eq!(jr.windows, br.windows, "recovered windows diverged");
            assert_eq!(
                jr.to_profile(),
                br.to_profile(),
                "salvaged profiles diverged at {threads} threads, {lanes} lanes"
            );

            std::fs::remove_dir_all(&jsonl_dir).unwrap();
            std::fs::remove_dir_all(&binary_dir).unwrap();
        }
    }
    tpupoint_par::set_threads(0);
    std::fs::remove_dir_all(&baseline_dir).unwrap();
}

#[test]
fn seeded_store_faults_recover_identically_in_both_formats() {
    // The same seeded fault stream hits both lanes; the retry layer must
    // absorb it identically regardless of what sits underneath.
    let jsonl_dir = tmp_dir("fault-jsonl");
    let binary_dir = tmp_dir("fault-binary");
    let jsonl = run_lane(&jsonl_dir, StoreFormat::Jsonl, 2, Some((0.3, 21, 10)));
    let binary = run_lane(&binary_dir, StoreFormat::Binary, 2, Some((0.3, 21, 10)));
    assert_eq!(jsonl.profile.store_errors, 0, "retries absorb the faults");
    assert_eq!(binary.profile, jsonl.profile);

    let jr = recover(&jsonl_dir);
    let br = recover(&binary_dir);
    assert_eq!(jr.missing_acknowledged(), (0, 0));
    assert_eq!(br.missing_acknowledged(), (0, 0));
    assert_eq!(jr.steps, br.steps);
    assert_eq!(jr.windows, br.windows);

    std::fs::remove_dir_all(&jsonl_dir).unwrap();
    std::fs::remove_dir_all(&binary_dir).unwrap();
}
